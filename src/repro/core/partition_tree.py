"""Binary partition tree for MCIO's I/O workload partition (paper §3.2).

The file region of one aggregation group is recursively bisected; every
vertex represents a non-overlapping portion of the region, internal
vertices are portions "that no longer exist, but were split at some
previous time", and each leaf is a live file domain.

Bisection terminates when a portion's *requested data* drops to the
per-aggregator optimal message size ``Msg_ind`` — the criterion is data
volume, not region width, so dense regions split deeper than sparse ones
("different number of file domains will be generated in each group
depending on the amount and distribution of data").

When a file domain's hosts lack memory, the domain is *remerged* with its
neighbour (paper §3.2, Figure 5):

* **Case 1** — the departing leaf's sibling is itself a leaf: the sibling
  takes over directly and their parent becomes the (merged) leaf.
* **Case 2** — the sibling is internal: depth-first search inside the
  sibling's subtree, visiting the side adjacent to the departing leaf
  first, finds the neighbouring leaf; that leaf absorbs the region.

Invariant maintained throughout: the live leaves, in order, exactly
partition the root region.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.core.request import Extent

__all__ = ["PartitionNode", "PartitionTree"]


class PartitionNode:
    """One vertex of the partition tree."""

    __slots__ = ("extent", "parent", "left", "right")

    def __init__(self, extent: Extent, parent: Optional["PartitionNode"] = None):
        self.extent = extent
        self.parent = parent
        self.left: Optional["PartitionNode"] = None
        self.right: Optional["PartitionNode"] = None

    @property
    def is_leaf(self) -> bool:
        """True for live file domains."""
        return self.left is None and self.right is None

    def sibling(self) -> Optional["PartitionNode"]:
        """The other child of this node's parent (None at the root)."""
        if self.parent is None:
            return None
        return self.parent.right if self.parent.left is self else self.parent.left

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"<PartitionNode {kind} [{self.extent.offset}, {self.extent.end})>"


class PartitionTree:
    """Recursive-bisection partition of one group's file region.

    Parameters
    ----------
    region:
        The aggregation group's aggregate file region.
    data_bytes:
        ``data_bytes(lo, hi)`` = requested bytes inside ``[lo, hi)``
        (sum over the group's ranks).  Drives the termination criterion.
    msg_ind:
        Target requested-bytes per leaf (``Msg_ind``).
    stripe_size:
        If > 0, bisection cuts are aligned down to stripe boundaries.
    min_width:
        Never split a region narrower than this (guards degenerate
        recursion when data is extremely dense).
    """

    def __init__(
        self,
        region: Extent,
        data_bytes: Callable[[int, int], int],
        msg_ind: int,
        stripe_size: int = 0,
        min_width: int = 2,
    ):
        if region.empty:
            raise ValueError("cannot partition an empty region")
        if msg_ind < 1:
            raise ValueError("msg_ind must be >= 1")
        if min_width < 2:
            raise ValueError("min_width must be >= 2")
        self.root = PartitionNode(region)
        #: Memoised view of the caller's byte-count function: bisection,
        #: rebalancing, and the restart-heavy remerge passes all re-query
        #: the same subtree extents, and the underlying computation (a sum
        #: of pattern clips over the group's ranks) is the expensive part
        #: of planning.  Keyed by ``(lo, hi)``; the raw callable stays on
        #: :attr:`_data_bytes_raw`.
        self._data_bytes_raw = data_bytes
        self._data_bytes_cache: dict[tuple[int, int], int] = {}
        #: How many distinct extents were actually evaluated (memo misses)
        #: — the unit of planning work the plan cache saves on a hit.
        self.raw_queries = 0
        self.msg_ind = int(msg_ind)
        self.stripe_size = int(stripe_size)
        self.min_width = int(min_width)
        #: File-ordered live leaves, maintained incrementally by
        #: :meth:`remerge` instead of re-walking the tree per query.
        self._leaves: Optional[list[PartitionNode]] = None
        self._build(self.root)

    def data_bytes(self, lo: int, hi: int) -> int:
        """Requested bytes inside ``[lo, hi)``, memoised per extent."""
        key = (lo, hi)
        cached = self._data_bytes_cache.get(key)
        if cached is None:
            cached = self._data_bytes_cache[key] = self._data_bytes_raw(lo, hi)
            self.raw_queries += 1
        return cached

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _cut_point(self, ext: Extent) -> Optional[int]:
        """Midpoint of `ext`, stripe-aligned; None if no legal interior cut."""
        mid = ext.offset + ext.length // 2
        if self.stripe_size > 1:
            aligned = (mid // self.stripe_size) * self.stripe_size
            if aligned <= ext.offset:
                aligned = ext.offset + self.stripe_size
            if aligned >= ext.end:
                return None
            mid = aligned
        if mid <= ext.offset or mid >= ext.end:
            return None
        return mid

    def _build(self, node: PartitionNode) -> None:
        ext = node.extent
        if ext.length < self.min_width:
            return
        if self.data_bytes(ext.offset, ext.end) <= self.msg_ind:
            return
        cut = self._cut_point(ext)
        if cut is None:
            return
        node.left = PartitionNode(Extent(ext.offset, cut - ext.offset), node)
        node.right = PartitionNode(Extent(cut, ext.end - cut), node)
        self._build(node.left)
        self._build(node.right)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def leaves(self) -> list[PartitionNode]:
        """Live file domains in file order."""
        if self._leaves is None:
            self._leaves = list(self._iter_leaves(self.root))
        return list(self._leaves)

    def _iter_leaves(self, node: PartitionNode) -> Iterator[PartitionNode]:
        if node.is_leaf:
            yield node
        else:
            assert node.left is not None and node.right is not None
            yield from self._iter_leaves(node.left)
            yield from self._iter_leaves(node.right)

    def check_invariant(self) -> None:
        """Assert the leaves exactly partition the root region."""
        leaves = self.leaves()
        pos = self.root.extent.offset
        for leaf in leaves:
            if leaf.extent.offset != pos:
                raise AssertionError(
                    f"gap/overlap at {pos}: leaf starts at {leaf.extent.offset}"
                )
            pos = leaf.extent.end
        if pos != self.root.extent.end:
            raise AssertionError(f"leaves end at {pos}, root at {self.root.extent.end}")

    # ------------------------------------------------------------------
    # remerging (paper Figure 5)
    # ------------------------------------------------------------------
    def remerge(self, leaf: PartitionNode) -> PartitionNode:
        """Remove `leaf`; its region is taken over by the neighbouring leaf.

        Returns the absorbing leaf (with its extent already expanded).

        Raises
        ------
        ValueError
            If `leaf` is the only leaf (the root) — nothing to merge with.
        """
        if not leaf.is_leaf:
            raise ValueError("can only remerge a leaf")
        parent = leaf.parent
        if parent is None:
            raise ValueError("cannot remerge the only remaining domain")
        sibling = leaf.sibling()
        assert sibling is not None
        leaf_is_left = parent.left is leaf

        if sibling.is_leaf:
            # Case 1: sibling takes over directly; the parent vertex
            # becomes a leaf owning the merged region.
            parent.left = None
            parent.right = None
            cache = self._leaves
            if cache is not None:
                i = cache.index(leaf)
                if leaf_is_left:
                    cache[i : i + 2] = [parent]
                else:
                    cache[i - 1 : i + 1] = [parent]
            return parent

        # Case 2: DFS inside the sibling subtree, visiting the side
        # adjacent to the departing leaf first, to find the neighbour leaf.
        node = sibling
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if leaf_is_left else node.right
        absorber = node

        # splice the departing leaf out: the sibling subtree takes the
        # parent's position in the tree
        grand = parent.parent
        sibling.parent = grand
        if grand is None:
            self.root = sibling
        elif grand.left is parent:
            grand.left = sibling
        else:
            grand.right = sibling

        # expand the absorbing leaf and every ancestor on the path up to
        # (and including) the spliced-in sibling to cover the lost region
        merged_lo = min(leaf.extent.offset, absorber.extent.offset)
        merged_hi = max(leaf.extent.end, absorber.extent.end)
        node = absorber
        while True:
            lo = min(node.extent.offset, merged_lo)
            hi = max(node.extent.end, merged_hi)
            node.extent = Extent(lo, hi - lo)
            if node is sibling:
                break
            assert node.parent is not None
            node = node.parent
        cache = self._leaves
        if cache is not None:
            # the absorber object stays live with its extent expanded in
            # place, so only the departing leaf drops out of the order
            cache.remove(leaf)
        return absorber

    @property
    def n_leaves(self) -> int:
        """Number of live file domains."""
        if self._leaves is None:
            self._leaves = list(self._iter_leaves(self.root))
        return len(self._leaves)
