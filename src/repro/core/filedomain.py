"""File-domain structures and the baseline even partitioning.

A *file domain* is the contiguous slice of the aggregate file region one
aggregator is responsible for.  The baseline (ROMIO) splits the region
evenly among a fixed aggregator set; MCIO derives domains from its
partition tree instead (see :mod:`repro.core.partition_tree`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.request import Extent

__all__ = ["FileDomain", "even_domains", "rounds_for"]


@dataclass(frozen=True)
class FileDomain:
    """One aggregator's assignment.

    Attributes
    ----------
    extent:
        The contiguous file region this aggregator owns.
    aggregator_rank:
        The rank that performs I/O for the region.
    buffer_bytes:
        Aggregation-buffer size the aggregator will allocate.
    paged:
        True if, at planning time, the host could not supply
        ``buffer_bytes`` from available memory (the allocation will page).
    group_id:
        Aggregation group the domain belongs to (0 for the baseline's
        single implicit group).
    lender_node:
        When set, the aggregation buffer does not live on the
        aggregator's host: it is leased from this node id at execution
        time (borrowed remote memory), and buffer staging crosses the
        fabric instead of the local memory bus.
    """

    extent: Extent
    aggregator_rank: int
    buffer_bytes: int
    paged: bool = False
    group_id: int = 0
    lender_node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.buffer_bytes < 1:
            raise ValueError("buffer_bytes must be >= 1")
        if self.aggregator_rank < 0:
            raise ValueError("aggregator_rank must be >= 0")

    @property
    def rounds(self) -> int:
        """Collective-buffer rounds needed to cover the domain."""
        return rounds_for(self.extent.length, self.buffer_bytes)


def rounds_for(domain_bytes: int, buffer_bytes: int) -> int:
    """Number of collective-buffer rounds for a domain of `domain_bytes`."""
    if buffer_bytes < 1:
        raise ValueError("buffer_bytes must be >= 1")
    return max(1, math.ceil(domain_bytes / buffer_bytes))


def even_domains(
    lo: int,
    hi: int,
    n_domains: int,
    stripe_size: int = 0,
) -> list[Extent]:
    """Split ``[lo, hi)`` into `n_domains` near-equal contiguous extents.

    This is ROMIO's file-domain calculation: domain size =
    ``ceil(span / n)``, with optional alignment of interior boundaries
    down to `stripe_size` multiples so no two aggregators share a stripe.
    Trailing domains may come out empty (and are dropped), exactly as
    ROMIO leaves trailing aggregators idle for small files.

    Returns
    -------
    list of Extent
        Non-empty domains in file order; their union is ``[lo, hi)``.
    """
    if hi < lo:
        raise ValueError(f"hi {hi} < lo {lo}")
    if n_domains < 1:
        raise ValueError("n_domains must be >= 1")
    span = hi - lo
    if span == 0:
        return []
    fd_size = math.ceil(span / n_domains)
    if stripe_size > 0 and fd_size > stripe_size:
        # round the domain size up to a stripe multiple (ROMIO's Lustre
        # driver aligns domains so aggregators do not split stripes)
        fd_size = math.ceil(fd_size / stripe_size) * stripe_size
    out: list[Extent] = []
    start = lo
    for _ in range(n_domains):
        if start >= hi:
            break
        end = min(start + fd_size, hi)
        out.append(Extent(start, end - start))
        start = end
    return out
