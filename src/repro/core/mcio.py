"""Memory-Conscious Collective I/O — the paper's contribution (§3).

The planning pipeline mirrors Figure 3's four components:

1. **Aggregation Group Division** (:mod:`repro.core.group_division`) —
   the workload splits into disjoint groups; shuffle traffic stays inside
   a group.
2. **I/O Workload Partition** (:mod:`repro.core.partition_tree`) — each
   group's region is recursively bisected into file domains carrying at
   most ``Msg_ind`` requested bytes.
3. **Workload Portions Remerging** — domains whose hosts lack memory are
   merged with their neighbours (driven from inside the placer).
4. **Aggregators Location** (:mod:`repro.core.aggregator_selection`) —
   per domain, the candidate host with maximum available memory wins,
   subject to ``N_ah`` and ``Mem_min``.

Planning inputs that differ from the baseline: each rank contributes its
node's *available memory* to an allgather, so the plan reacts to the
run-time memory state — "determines I/O aggregators at run time
considering memory consumption and variance among processes".

Execution is the shared machinery in :mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import replace as _cfg_replace
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.core.aggregator_selection import PlacementError, place_aggregators
from repro.core.borrow import BorrowDegraded, BorrowSession
from repro.core.config import MCIOConfig
from repro.core.engine import ExecutionPlan, execute_collective
from repro.core.filedomain import FileDomain, even_domains
from repro.core.group_division import divide_groups
from repro.core.metrics import CollectiveStats, StatsCollector
from repro.core.partition_tree import PartitionTree
from repro.core.pattern_array import PatternArray
from repro.core.plan_cache import PlanCache
from repro.core.request import AccessPattern
from repro.core.two_phase import default_aggregators
from repro.mpi.comm import RankContext, SimComm
from repro.obs.tracer import PID_PLANNER
from repro.pfs.filesystem import ParallelFileSystem

__all__ = ["MemoryConsciousCollectiveIO"]


def _proportional_rebalance(domains, stripe_size: int = 0):
    """Re-slice one group's region so domain size tracks buffer size.

    Two-phase execution advances all aggregators in lockstep
    (ROMIO's ``ntimes = max rounds``), so a memory-starved aggregator
    with a small buffer and a big domain stalls everyone in a long tail.
    Giving each aggregator file span proportional to its aggregation
    buffer (paged buffers discounted by the paging slowdown) equalizes
    per-domain round counts — the memory-conscious counterpart of
    ROMIO's even split.

    `domains` must be one group's domains in file order (they tile the
    group's region); aggregator assignments, buffers, and paged flags are
    preserved.
    """
    from dataclasses import replace as _replace

    from repro.core.request import Extent

    if len(domains) <= 1:
        return list(domains)
    lo = domains[0].extent.offset
    hi = domains[-1].extent.end
    span = hi - lo
    weights = [
        d.buffer_bytes * (0.25 if d.paged else 1.0) for d in domains
    ]
    total_weight = sum(weights)
    out = []
    pos = lo
    acc = 0.0
    for i, d in enumerate(domains):
        acc += weights[i]
        if i == len(domains) - 1:
            end = hi
        else:
            end = lo + int(span * acc / total_weight)
            if stripe_size > 1:
                end = (end // stripe_size) * stripe_size
            end = min(max(end, pos + 1), hi - (len(domains) - 1 - i))
        out.append(_replace(d, extent=Extent(pos, end - pos)))
        pos = end
    return out


class MemoryConsciousCollectiveIO:
    """The memory-conscious collective I/O strategy.

    Usage is identical to
    :class:`~repro.core.two_phase.TwoPhaseCollectiveIO`; only planning
    differs.
    """

    name = "mcio"

    def __init__(
        self,
        comm: SimComm,
        pfs: ParallelFileSystem,
        config: Optional[MCIOConfig] = None,
        tenant: Optional[str] = None,
    ):
        self.comm = comm
        self.pfs = pfs
        self.config = config if config is not None else MCIOConfig()
        #: Owning job's identity when several engines share one cluster
        #: (see :mod:`repro.tenancy`).  Leases this engine grants are
        #: tagged with it, and lease events from *other* tenants' tagged
        #: leases neither drop this engine's plan cache nor stale its
        #: persistent handles.  None (the default) preserves the
        #: single-job behaviour: every lease event invalidates.
        self.tenant = tenant
        self._rank_seq: dict[int, int] = {}
        #: Floor for freshly seen ranks' sequence numbers: a vectorized
        #: collective consumes one sequence slot for *all* ranks at once
        #: (see :meth:`_advance_seq`), so later per-rank operations must
        #: not collide with it.
        self._seq_floor = 0
        #: Fault injectors wired via :meth:`watch_faults`; a non-empty
        #: schedule on any of them makes the planner refuse vectorization.
        self._fault_injectors: list = []
        #: One-shot refusal reason consumed by the next collector built:
        #: set by the vectorized driver right before it falls back to the
        #: per-rank path, so the fallback's stats carry the refusal.
        self._pending_vec_refusal: Optional[str] = None
        #: Same one-shot contract for the sharded driver: set right
        #: before its per-rank fallback so the fallback's stats carry
        #: the sharding-refusal reason.
        self._pending_shard_refusal: Optional[str] = None
        self._plans: dict = {}
        self._stats: dict[int, StatsCollector] = {}
        #: Per-operation shared lease state (None for lease-free plans).
        self._borrows: dict = {}
        #: Optional :class:`~repro.core.audit.ConservationAuditor`; when
        #: set (via its ``attach``), every operation's collector reports
        #: attempts/extents to it and finalize hands it the final stats.
        self.auditor = None
        #: Finalized stats of completed operations, in call order.
        self.history: list[CollectiveStats] = []
        #: Signature-keyed reuse of finished plans (see
        #: :mod:`repro.core.plan_cache`); disabled unless
        #: ``config.plan_cache`` opts in.
        self.plan_cache = PlanCache(enabled=self.config.plan_cache)
        self.plan_cache.tenant = tenant
        if self.plan_cache.enabled:
            # lease grants/revocations change where aggregation buffers
            # live, so plans cached against the old lease set are stale
            self.comm.cluster.memory_ledger.add_listener(
                self.plan_cache.on_lease_event
            )
        #: Callbacks fired when externally frozen plans go stale (see
        #: :meth:`add_invalidation_listener`); persistent collectives
        #: subscribe here so lease churn, faults, and failover force a
        #: re-plan at their next ``start()``.
        self._invalidation_listeners: list = []
        self.comm.cluster.memory_ledger.add_listener(self._on_lease_event)
        #: Partition-tree evaluations performed by the most recent
        #: :meth:`plan` call (0 when the plan came from the cache).
        self.last_plan_tree_queries = 0

    # ------------------------------------------------------------------
    def watch_faults(self, injector) -> None:
        """Invalidate cached plans on every fault apply/revert.

        Wire any :class:`~repro.faults.injector.FaultInjector` driving
        this engine's cluster or file system: plans were built against a
        platform state a fault just changed (memory shock, node failure,
        server health), so reuse would be unsound.
        """
        injector.add_listener(self.plan_cache.on_fault_event)
        injector.add_listener(self._on_fault_event)
        self._fault_injectors.append(injector)

    # ------------------------------------------------------------------
    def add_invalidation_listener(self, fn) -> None:
        """Register ``fn(reason)`` to fire whenever frozen plans go stale.

        Fires on lease grant/revoke/expire, fault apply/revert (for
        injectors wired via :meth:`watch_faults`), and mid-run aggregator
        failover.  :class:`~repro.core.persistent.PersistentCollective`
        handles use this to drop their frozen plan and re-plan at the
        next ``start()``.
        """
        self._invalidation_listeners.append(fn)

    def remove_invalidation_listener(self, fn) -> None:
        """Unregister a callback added by :meth:`add_invalidation_listener`."""
        try:
            self._invalidation_listeners.remove(fn)
        except ValueError:
            pass

    def _notify_plan_invalidation(self, reason: str) -> None:
        for fn in list(self._invalidation_listeners):
            fn(reason)

    def _on_lease_event(self, lease, event) -> None:
        # renew/release keep the buffer map intact; only grants and
        # losses move memory between hosts
        if event not in ("grant", "revoke", "expire"):
            return
        # another tenant's tagged lease changes *its* buffer map, not
        # ours: the memory it pins reaches our next plan through the
        # lenders' committed bytes, so staling our frozen plans for it
        # would be pure cross-tenant bleed
        lease_tenant = getattr(lease, "tenant", None)
        if (
            self.tenant is not None
            and lease_tenant is not None
            and lease_tenant != self.tenant
        ):
            return
        self._notify_plan_invalidation(f"lease-{event}")

    def _on_fault_event(self, event, phase) -> None:
        self._notify_plan_invalidation(f"fault-{phase}")

    # ------------------------------------------------------------------
    def write(self, ctx: RankContext, pattern: AccessPattern,
              payload: Optional[np.ndarray] = None):
        """Process generator: collective write of this rank's view."""
        return (yield from self._collective(ctx, pattern, payload, "write"))

    def read(self, ctx: RankContext, pattern: AccessPattern,
             payload: Optional[np.ndarray] = None):
        """Process generator: collective read; fills and returns `payload`."""
        if payload is None and self.pfs.datastore is not None:
            payload = np.zeros(pattern.nbytes, dtype=np.uint8)
        return (yield from self._collective(ctx, pattern, payload, "read"))

    # ------------------------------------------------------------------
    def _next_seq(self, rank: int) -> int:
        seq = self._rank_seq.get(rank, self._seq_floor)
        self._rank_seq[rank] = seq + 1
        return seq

    def _advance_seq(self) -> int:
        """Claim one sequence slot on behalf of every rank at once.

        The vectorized driver runs a whole collective without per-rank
        coroutines, so no rank's counter ticks; this takes the next free
        slot past anything any rank has used and raises the floor so a
        later per-rank collective starts beyond it.
        """
        seq = max(
            self._seq_floor,
            max(self._rank_seq.values(), default=self._seq_floor),
        )
        self._rank_seq.clear()
        self._seq_floor = seq + 1
        return seq

    def _collective(self, ctx, pattern, payload, op):
        if payload is not None and len(payload) != pattern.nbytes:
            raise ValueError(
                f"payload {len(payload)} B != pattern {pattern.nbytes} B"
            )
        seq = self._next_seq(ctx.rank)
        meta_bytes = 32 * (1 + pattern.segment_count)
        patterns = yield from self.comm.allgather(ctx, pattern, nbytes=meta_bytes)
        # run-time memory snapshot: each rank reports its node's available
        # memory net of current commitments, plus the node's health
        mem_state = yield from self.comm.allgather(
            ctx,
            (ctx.node.node_id, ctx.node.memory.free_available, ctx.node.failed),
            nbytes=16,
        )
        plan, stats, borrow = self._prepare(seq, patterns, mem_state, op)
        if plan is None:
            # last tier of the fallback chain: uncoordinated independent I/O
            result = yield from self._independent_tier(ctx, pattern, payload, op, stats)
        else:
            try:
                result = yield from execute_collective(
                    ctx, self.comm, self.pfs, plan, patterns, stats, op, seq,
                    payload=payload, granularity=self.config.shuffle_granularity,
                    failover_config=self.config if self.config.failover else None,
                    intra_node_aggregation=self.config.intra_node_aggregation,
                    borrow=borrow,
                )
            except BorrowDegraded:
                # every rank raises at the same round boundary (after
                # lease teardown); re-enter the normal degradation chain
                # with borrowing disabled
                result = yield from self._borrow_fallback(
                    ctx, pattern, payload, op, seq, patterns, stats
                )
        self._finish(seq, ctx)
        return result

    def _prepare(self, seq, patterns, mem_state, op):
        if seq not in self._plans:
            # the cache has no environment of its own: point it at the
            # live tracer so hit/miss/invalidate instants land in-trace
            self.plan_cache.tracer = self.comm.env.tracer
            memory_available = {}
            failed_nodes = set()
            for node_id, avail, failed in mem_state:
                memory_available.setdefault(node_id, avail)
                if failed:
                    failed_nodes.add(node_id)
            (plan, tier, reason), cached = self._plan_or_reuse(
                patterns, memory_available, frozenset(failed_nodes)
            )
            self._plans[seq] = plan
            self._stats[seq] = self._make_collector(op, plan, tier, reason, cached)
            borrowed = plan is not None and any(
                d.lender_node is not None for d in plan.domains
            )
            # lease-free plans get no session at all: the borrow machinery
            # must not perturb never-triggered runs
            self._borrows[seq] = (
                BorrowSession(
                    self.comm.cluster.memory_ledger, self.config, seq,
                    tenant=self.tenant,
                )
                if borrowed
                else None
            )
        return self._plans[seq], self._stats[seq], self._borrows[seq]

    def _make_collector(self, op, plan, tier, reason, cached) -> StatsCollector:
        """Build one operation's collector (shared with the vectorized driver)."""
        collector = StatsCollector(self.name, op, n_ranks=self.comm.size)
        collector.n_groups = plan.n_groups if plan is not None else 1
        collector.set_tier(tier)
        collector.attach_pfs(self.pfs)
        collector.record_plan_cache(
            cached,
            cache_stats=self.plan_cache.stats,
            tree_queries=0 if cached else self.last_plan_tree_queries,
        )
        if reason is not None:
            collector.extra["fallback_reason"] = reason
        if self.auditor is not None:
            collector.auditor = self.auditor
        pending = self._pending_vec_refusal
        if pending is not None:
            self._pending_vec_refusal = None
            collector.record_vectorized_refusal(pending)
        pending_shard = self._pending_shard_refusal
        if pending_shard is not None:
            self._pending_shard_refusal = None
            collector.record_sharding_refusal(pending_shard)
        return collector

    def _plan_or_reuse(self, patterns, memory_available, failed_nodes):
        """Plan via the cache: returns ``((plan, tier, reason), cached)``.

        The memory snapshot is normalised (every cluster node present)
        exactly like :meth:`plan` does before the bucket digest is taken,
        so digest and planner see the same state.
        """
        cache = self.plan_cache
        if not cache.enabled:
            entry = self._plan_with_fallback(
                patterns, memory_available, failed_nodes
            )
            return entry, False
        for node in self.comm.cluster.nodes:
            memory_available.setdefault(node.node_id, node.memory.free_available)
        stripe = self.pfs.layout.stripe_size if self.config.stripe_align else 0
        key = cache.signature(
            patterns, self.config, failed_nodes, stripe,
            lease_digest=self.comm.cluster.memory_ledger.digest(
                tenant=self.tenant
            ),
        )
        digest = (
            ()
            if self.config.memory_oblivious
            else cache.memory_digest(memory_available, self.config)
        )
        entry = cache.lookup(key, digest)
        if entry is not None:
            return entry, True
        entry = self._plan_with_fallback(patterns, memory_available, failed_nodes)
        cache.store(key, digest, entry)
        return entry, False

    def _independent_tier(self, ctx, pattern, payload, op, stats):
        """Process generator: serve the collective as independent I/O."""
        stats.mark_start(ctx.env.now)
        stats.record_attempt()
        if op == "write":
            yield from self.pfs.write_pattern(ctx.node, pattern, payload)
            result = payload
        else:
            data = yield from self.pfs.read_pattern(ctx.node, pattern)
            if payload is not None and data is not None:
                payload[:] = data
                data = payload
            result = data
        stats.record_bytes(pattern.nbytes)
        for file_off, length, _buf_off in pattern.iter_mapped_extents():
            stats.record_io_extent(file_off, length)
        # preserve collective-call semantics: no rank leaves early
        yield from self.comm.barrier(ctx)
        return result

    def _borrow_fallback(self, ctx, pattern, payload, op, seq, patterns, stats):
        """Process generator: re-run a degraded borrowed collective.

        Every rank arrives here at the same sim instant (the abort round's
        boundary).  A fresh memory/health allgather feeds the normal
        degradation chain with ``placement_policy`` forced to
        ``"remerge"``, so the retry re-enters MCIO → two-phase →
        independent exactly as a memory-pressured plan would — no second
        borrow attempt inside the same operation.
        """
        mem_state = yield from self.comm.allgather(
            ctx,
            (ctx.node.node_id, ctx.node.memory.free_available, ctx.node.failed),
            nbytes=16,
        )
        key = ("borrow-fallback", seq)
        if key not in self._plans:
            memory_available = {}
            failed_nodes = set()
            for node_id, avail, failed in mem_state:
                memory_available.setdefault(node_id, avail)
                if failed:
                    failed_nodes.add(node_id)
            remerge_cfg = _cfg_replace(self.config, placement_policy="remerge")
            plan, tier, reason = self._plan_with_fallback(
                patterns,
                memory_available,
                frozenset(failed_nodes),
                config=remerge_cfg,
            )
            stats.set_tier(tier if tier is not None else "remerge")
            if reason is not None:
                stats.extra.setdefault("fallback_reason", reason)
            self._plans[key] = plan
        plan = self._plans[key]
        if plan is None:
            return (yield from self._independent_tier(ctx, pattern, payload, op, stats))
        remerge_cfg = _cfg_replace(self.config, placement_policy="remerge")
        return (
            yield from execute_collective(
                ctx, self.comm, self.pfs, plan, patterns, stats, op,
                ("bfb", seq),
                payload=payload, granularity="round",
                failover_config=remerge_cfg if self.config.failover else None,
                intra_node_aggregation=False,
            )
        )

    def _finish(self, seq, ctx):
        stats = self._stats.get(seq)
        if stats is None:
            return
        stats.extra["finishers"] = stats.extra.get("finishers", 0) + 1
        if stats.extra["finishers"] == self.comm.size:
            stats.mark_end(ctx.env.now)
            final = stats.finalize()
            self.history.append(final)
            del self._stats[seq]
            del self._plans[seq]
            self._borrows.pop(seq, None)
            self._plans.pop(("borrow-fallback", seq), None)
            if final.failovers:
                # aggregators moved mid-run: every cached plan (including
                # the one just executed) now names stale placements
                self.plan_cache.invalidate("failover")
                self._notify_plan_invalidation("failover")

    # ------------------------------------------------------------------
    def _plan_with_fallback(
        self,
        patterns: Sequence[AccessPattern],
        memory_available: dict[int, int],
        failed_nodes: frozenset = frozenset(),
        config: Optional[MCIOConfig] = None,
    ):
        """Graceful planning degradation: MCIO → two-phase → independent.

        Returns ``(plan, tier, reason)``: `tier` is None when the MCIO
        plan succeeded, ``"two-phase"`` for the ROMIO-style even plan on
        the live hosts, ``"independent"`` (with ``plan=None``) when not
        even one live aggregator host exists; `reason` carries the
        triggering :class:`PlacementError` message.  `config` overrides
        the engine's parameters for this plan only (the borrow fallback
        re-plans with ``placement_policy="remerge"``).
        """
        cfg = self.config if config is None else config
        try:
            plan = self.plan(
                patterns, memory_available, failed_nodes=failed_nodes,
                config=cfg,
            )
            return plan, None, None
        except PlacementError as exc:
            if not cfg.fallback_chain:
                raise
            reason = str(exc)
        plan = self._two_phase_plan(patterns, failed_nodes)
        if plan is not None:
            return plan, "two-phase", reason
        return None, "independent", reason

    def _two_phase_plan(
        self, patterns: Sequence[AccessPattern], failed_nodes: frozenset
    ) -> Optional[ExecutionPlan]:
        """ROMIO-style even plan restricted to live hosts, or None."""
        if isinstance(patterns, PatternArray):
            if not patterns.any_active:
                return ExecutionPlan((), (), n_groups=1)
            lo, hi = patterns.bounds()
        else:
            active = [p for p in patterns if not p.empty]
            if not active:
                return ExecutionPlan((), (), n_groups=1)
            lo = min(p.start for p in active)
            hi = max(p.end for p in active)
        aggs = [
            r
            for r in default_aggregators(self.comm.placement)
            if self.comm.placement[r] not in failed_nodes
        ]
        if not aggs:
            return None
        stripe = self.pfs.layout.stripe_size if self.config.stripe_align else 0
        extents = even_domains(lo, hi, len(aggs), stripe_size=stripe)
        domains = [
            FileDomain(
                extent=ext,
                aggregator_rank=aggs[i],
                buffer_bytes=self.config.cb_buffer_size,
                paged=False,
                group_id=0,
            )
            for i, ext in enumerate(extents)
        ]
        return ExecutionPlan.build(domains, patterns, n_groups=1)

    # ------------------------------------------------------------------
    def plan(
        self,
        patterns: Sequence[AccessPattern],
        memory_available: dict[int, int],
        failed_nodes: frozenset = frozenset(),
        config: Optional[MCIOConfig] = None,
    ) -> ExecutionPlan:
        """Run the four-component MCIO planning pipeline.

        Hosts in `failed_nodes` are soft-excluded: they plan as if they
        had no memory at all, so the placer only lands on them when no
        live candidate exists (and marks the placement paged).  `config`
        (when given) overrides the engine's parameters for this plan.
        """
        cfg = self.config if config is None else config
        stripe = self.pfs.layout.stripe_size if cfg.stripe_align else 0
        self.last_plan_tree_queries = 0
        # Planning costs no simulated time: its spans sit at the current
        # sim instant on the planner track with zero sim duration, and
        # the host-side cost rides along as a wall_us annotation.
        tracer = self.comm.env.tracer

        wall0 = perf_counter() if tracer.enabled else 0.0
        groups = divide_groups(
            patterns, self.comm.placement, cfg.msg_group, stripe_size=stripe
        )
        if tracer.enabled:
            tracer.complete(
                "plan", "plan.group_division", PID_PLANNER, 0,
                tracer.now(), 0.0,
                groups=len(groups),
                wall_us=(perf_counter() - wall0) * 1e6,
            )
        if not groups:
            return ExecutionPlan((), (), n_groups=0)

        # every node must have a memory entry even if no rank reported it
        for node in self.comm.cluster.nodes:
            memory_available.setdefault(node.node_id, node.memory.free_available)
        if cfg.memory_oblivious:
            # ablation: pretend every host has its full physical memory
            memory_available = {
                node.node_id: node.memory.capacity
                for node in self.comm.cluster.nodes
            }
        if failed_nodes:
            memory_available = {
                node_id: (0 if node_id in failed_nodes else avail)
                for node_id, avail in memory_available.items()
            }

        all_domains = []
        # reservations and the N_ah cap are shared across groups: the
        # groups' aggregators all coexist during the collective
        host_state: dict = {}
        for group in groups:
            members = group.ranks

            if isinstance(patterns, PatternArray):
                if len(members) == len(patterns):
                    # one group spanning every rank — the common tiled
                    # case; skip member indexing on each tree query
                    def group_data(lo, hi):
                        return patterns.sum_bytes_in(lo, hi)
                else:
                    members_arr = np.asarray(members, dtype=np.int64)

                    def group_data(lo, hi, _members=members_arr):
                        return patterns.sum_bytes_in(lo, hi, _members)
            else:
                def group_data(lo, hi, _members=members):
                    return sum(patterns[r].bytes_in(lo, hi) for r in _members)

            # Size the partition to the group's feasible aggregator slots:
            # bisecting far below what memory-qualified hosts can absorb
            # only produces a remerge cascade whose lopsided survivor
            # domains stall the lockstep rounds.  A host counts if it can
            # hold at least half the per-aggregator buffer (the adaptive
            # path accepts those).
            requirement = max(cfg.mem_min, min(cfg.cb_buffer_size, cfg.msg_ind))
            group_nodes = {self.comm.placement[r] for r in members}
            slots = sum(
                max(0, cfg.nah - getattr(host_state.get(n), "aggregators", 0))
                for n in group_nodes
                if memory_available.get(n, 0) >= max(1, requirement // 2)
            )
            group_bytes = group_data(group.region.offset, group.region.end)
            msg_ind_eff = max(
                cfg.msg_ind, -(-group_bytes // max(1, slots))
            )

            wall0 = perf_counter() if tracer.enabled else 0.0
            tree = PartitionTree(
                group.region, group_data, msg_ind=msg_ind_eff, stripe_size=stripe
            )
            # forcing the initial bisection here (rather than inside the
            # placer's first pass) is behaviour-neutral — data_bytes is
            # memoised — and gives the remerge count below a baseline
            initial_leaves = tree.n_leaves
            if tracer.enabled:
                tracer.complete(
                    "plan", "plan.partition_tree", PID_PLANNER, 0,
                    tracer.now(), 0.0,
                    group=group.group_id, leaves=initial_leaves,
                    wall_us=(perf_counter() - wall0) * 1e6,
                )
                wall0 = perf_counter()
            try:
                domains = place_aggregators(
                    tree,
                    group.group_id,
                    members,
                    patterns,
                    self.comm.placement,
                    memory_available,
                    cfg,
                    host_state=host_state,
                )
            finally:
                self.last_plan_tree_queries += tree.raw_queries
            if tracer.enabled:
                # each remerge folds one leaf into a neighbour, so the
                # leaf deficit is exactly the remerge count
                tracer.complete(
                    "plan", "plan.placement", PID_PLANNER, 0,
                    tracer.now(), 0.0,
                    group=group.group_id, domains=len(domains),
                    remerges=initial_leaves - len(domains),
                    paged=sum(1 for d in domains if d.paged),
                    tree_queries=tree.raw_queries,
                    wall_us=(perf_counter() - wall0) * 1e6,
                )
                wall0 = perf_counter()
            all_domains.extend(_proportional_rebalance(domains, stripe))
            if tracer.enabled:
                tracer.complete(
                    "plan", "plan.rebalance", PID_PLANNER, 0,
                    tracer.now(), 0.0,
                    group=group.group_id,
                    wall_us=(perf_counter() - wall0) * 1e6,
                )
        return ExecutionPlan.build(all_domains, patterns, n_groups=len(groups))
