"""Memory-Conscious Collective I/O — the paper's contribution (§3).

The planning pipeline mirrors Figure 3's four components:

1. **Aggregation Group Division** (:mod:`repro.core.group_division`) —
   the workload splits into disjoint groups; shuffle traffic stays inside
   a group.
2. **I/O Workload Partition** (:mod:`repro.core.partition_tree`) — each
   group's region is recursively bisected into file domains carrying at
   most ``Msg_ind`` requested bytes.
3. **Workload Portions Remerging** — domains whose hosts lack memory are
   merged with their neighbours (driven from inside the placer).
4. **Aggregators Location** (:mod:`repro.core.aggregator_selection`) —
   per domain, the candidate host with maximum available memory wins,
   subject to ``N_ah`` and ``Mem_min``.

Planning inputs that differ from the baseline: each rank contributes its
node's *available memory* to an allgather, so the plan reacts to the
run-time memory state — "determines I/O aggregators at run time
considering memory consumption and variance among processes".

Execution is the shared machinery in :mod:`repro.core.engine`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.aggregator_selection import place_aggregators
from repro.core.config import MCIOConfig
from repro.core.engine import ExecutionPlan, execute_collective
from repro.core.group_division import divide_groups
from repro.core.metrics import CollectiveStats, StatsCollector
from repro.core.partition_tree import PartitionTree
from repro.core.request import AccessPattern
from repro.mpi.comm import RankContext, SimComm
from repro.pfs.filesystem import ParallelFileSystem

__all__ = ["MemoryConsciousCollectiveIO"]


def _proportional_rebalance(domains, stripe_size: int = 0):
    """Re-slice one group's region so domain size tracks buffer size.

    Two-phase execution advances all aggregators in lockstep
    (ROMIO's ``ntimes = max rounds``), so a memory-starved aggregator
    with a small buffer and a big domain stalls everyone in a long tail.
    Giving each aggregator file span proportional to its aggregation
    buffer (paged buffers discounted by the paging slowdown) equalizes
    per-domain round counts — the memory-conscious counterpart of
    ROMIO's even split.

    `domains` must be one group's domains in file order (they tile the
    group's region); aggregator assignments, buffers, and paged flags are
    preserved.
    """
    from dataclasses import replace as _replace

    from repro.core.request import Extent

    if len(domains) <= 1:
        return list(domains)
    lo = domains[0].extent.offset
    hi = domains[-1].extent.end
    span = hi - lo
    weights = [
        d.buffer_bytes * (0.25 if d.paged else 1.0) for d in domains
    ]
    total_weight = sum(weights)
    out = []
    pos = lo
    acc = 0.0
    for i, d in enumerate(domains):
        acc += weights[i]
        if i == len(domains) - 1:
            end = hi
        else:
            end = lo + int(span * acc / total_weight)
            if stripe_size > 1:
                end = (end // stripe_size) * stripe_size
            end = min(max(end, pos + 1), hi - (len(domains) - 1 - i))
        out.append(_replace(d, extent=Extent(pos, end - pos)))
        pos = end
    return out


class MemoryConsciousCollectiveIO:
    """The memory-conscious collective I/O strategy.

    Usage is identical to
    :class:`~repro.core.two_phase.TwoPhaseCollectiveIO`; only planning
    differs.
    """

    name = "mcio"

    def __init__(
        self,
        comm: SimComm,
        pfs: ParallelFileSystem,
        config: Optional[MCIOConfig] = None,
    ):
        self.comm = comm
        self.pfs = pfs
        self.config = config if config is not None else MCIOConfig()
        self._rank_seq: dict[int, int] = {}
        self._plans: dict[int, ExecutionPlan] = {}
        self._stats: dict[int, StatsCollector] = {}
        #: Finalized stats of completed operations, in call order.
        self.history: list[CollectiveStats] = []

    # ------------------------------------------------------------------
    def write(self, ctx: RankContext, pattern: AccessPattern,
              payload: Optional[np.ndarray] = None):
        """Process generator: collective write of this rank's view."""
        return (yield from self._collective(ctx, pattern, payload, "write"))

    def read(self, ctx: RankContext, pattern: AccessPattern,
             payload: Optional[np.ndarray] = None):
        """Process generator: collective read; fills and returns `payload`."""
        if payload is None and self.pfs.datastore is not None:
            payload = np.zeros(pattern.nbytes, dtype=np.uint8)
        return (yield from self._collective(ctx, pattern, payload, "read"))

    # ------------------------------------------------------------------
    def _next_seq(self, rank: int) -> int:
        seq = self._rank_seq.get(rank, 0)
        self._rank_seq[rank] = seq + 1
        return seq

    def _collective(self, ctx, pattern, payload, op):
        if payload is not None and len(payload) != pattern.nbytes:
            raise ValueError(
                f"payload {len(payload)} B != pattern {pattern.nbytes} B"
            )
        seq = self._next_seq(ctx.rank)
        meta_bytes = 32 * (1 + pattern.segment_count)
        patterns = yield from self.comm.allgather(ctx, pattern, nbytes=meta_bytes)
        # run-time memory snapshot: each rank reports its node's available
        # memory net of current commitments
        mem_pairs = yield from self.comm.allgather(
            ctx,
            (ctx.node.node_id, ctx.node.memory.free_available),
            nbytes=16,
        )
        plan, stats = self._prepare(seq, patterns, mem_pairs, op)
        result = yield from execute_collective(
            ctx, self.comm, self.pfs, plan, patterns, stats, op, seq,
            payload=payload, granularity=self.config.shuffle_granularity,
        )
        self._finish(seq, ctx)
        return result

    def _prepare(self, seq, patterns, mem_pairs, op):
        if seq not in self._plans:
            memory_available = {}
            for node_id, avail in mem_pairs:
                memory_available.setdefault(node_id, avail)
            self._plans[seq] = self.plan(patterns, memory_available)
            collector = StatsCollector(self.name, op, n_ranks=self.comm.size)
            collector.n_groups = self._plans[seq].n_groups
            self._stats[seq] = collector
        return self._plans[seq], self._stats[seq]

    def _finish(self, seq, ctx):
        stats = self._stats.get(seq)
        if stats is None:
            return
        stats.extra["finishers"] = stats.extra.get("finishers", 0) + 1
        if stats.extra["finishers"] == self.comm.size:
            stats.mark_end(ctx.env.now)
            self.history.append(stats.finalize())
            del self._stats[seq]
            del self._plans[seq]

    # ------------------------------------------------------------------
    def plan(
        self,
        patterns: Sequence[AccessPattern],
        memory_available: dict[int, int],
    ) -> ExecutionPlan:
        """Run the four-component MCIO planning pipeline."""
        cfg = self.config
        stripe = self.pfs.layout.stripe_size if cfg.stripe_align else 0

        groups = divide_groups(
            patterns, self.comm.placement, cfg.msg_group, stripe_size=stripe
        )
        if not groups:
            return ExecutionPlan((), (), n_groups=0)

        # every node must have a memory entry even if no rank reported it
        for node in self.comm.cluster.nodes:
            memory_available.setdefault(node.node_id, node.memory.free_available)
        if cfg.memory_oblivious:
            # ablation: pretend every host has its full physical memory
            memory_available = {
                node.node_id: node.memory.capacity
                for node in self.comm.cluster.nodes
            }

        all_domains = []
        # reservations and the N_ah cap are shared across groups: the
        # groups' aggregators all coexist during the collective
        host_state: dict = {}
        for group in groups:
            members = group.ranks

            def group_data(lo, hi, _members=members):
                return sum(patterns[r].bytes_in(lo, hi) for r in _members)

            # Size the partition to the group's feasible aggregator slots:
            # bisecting far below what memory-qualified hosts can absorb
            # only produces a remerge cascade whose lopsided survivor
            # domains stall the lockstep rounds.  A host counts if it can
            # hold at least half the per-aggregator buffer (the adaptive
            # path accepts those).
            requirement = max(cfg.mem_min, min(cfg.cb_buffer_size, cfg.msg_ind))
            group_nodes = {self.comm.placement[r] for r in members}
            slots = sum(
                max(0, cfg.nah - getattr(host_state.get(n), "aggregators", 0))
                for n in group_nodes
                if memory_available.get(n, 0) >= max(1, requirement // 2)
            )
            group_bytes = group_data(group.region.offset, group.region.end)
            msg_ind_eff = max(
                cfg.msg_ind, -(-group_bytes // max(1, slots))
            )

            tree = PartitionTree(
                group.region, group_data, msg_ind=msg_ind_eff, stripe_size=stripe
            )
            domains = place_aggregators(
                tree,
                group.group_id,
                members,
                patterns,
                self.comm.placement,
                memory_available,
                cfg,
                host_state=host_state,
            )
            all_domains.extend(_proportional_rebalance(domains, stripe))
        return ExecutionPlan.build(all_domains, patterns, n_groups=len(groups))
