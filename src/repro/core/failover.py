"""Mid-operation aggregator failover (degraded-mode execution).

When an aggregator's host fails while a collective is running, its file
domains are orphaned: the lockstep rounds would crawl at the failed
host's slowdown for the rest of the operation.  Between rounds the
engine detects failed aggregator hosts and calls
:func:`replace_failed_domains` to re-place each orphaned domain on the
next-best live candidate host, re-using the same memory-aware placer
that produced the original plan.

Determinism contract: the function is pure — given identical inputs it
returns identical output, so every rank (which reaches the same round
boundary at the same simulated instant and allgathers the same memory
snapshot) computes the same replacement without extra coordination.

The replacement deliberately preserves each domain's *extent* and
*buffer size*: the round geometry (``ntimes``, window offsets, message
tags) is part of the global lockstep contract already in flight on
every rank, so only the aggregator rank and the paged flag may change.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence

from repro.core.aggregator_selection import PlacementError, place_aggregators
from repro.core.config import MCIOConfig
from repro.core.filedomain import FileDomain
from repro.core.partition_tree import PartitionTree
from repro.core.request import AccessPattern

__all__ = ["FailoverDecision", "replace_failed_domains"]


class FailoverDecision:
    """Outcome of one between-rounds failover pass.

    Attributes
    ----------
    domains:
        The full domain list with orphaned domains re-placed (same
        length and order as the input).
    moved:
        Indices whose aggregator rank changed.
    kept:
        Indices whose aggregator host failed but for which no live host
        could satisfy the placement (the old aggregator is kept and the
        operation limps along at the failed host's speed).
    """

    def __init__(
        self,
        domains: list[FileDomain],
        moved: list[int],
        kept: list[int],
    ):
        self.domains = domains
        self.moved = moved
        self.kept = kept

    @property
    def changed(self) -> bool:
        """True if at least one domain was re-placed."""
        return bool(self.moved)


def _live_ranks_for(
    domain: FileDomain,
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
    failed_nodes: frozenset,
    live_memory: Mapping[int, int],
    host_state: Mapping[int, object],
) -> list[int]:
    """Candidate ranks for a re-placement, best first.

    Prefer live ranks with data inside the domain (the placer then keeps
    the shuffle local); fall back to any live rank so the domain can
    still be served remotely.  The fallback is ordered by remaining host
    memory because the placer's no-candidate branch takes ``ranks[0]``'s
    host verbatim — the order *is* the placement decision there.
    """
    ext = domain.extent
    with_data = [
        r
        for r in range(len(patterns))
        if placement[r] not in failed_nodes
        and patterns[r].bytes_in(ext.offset, ext.end) > 0
    ]
    if with_data:
        return with_data

    def remaining(node: int) -> int:
        state = host_state.get(node)
        if state is not None:
            return state.remaining
        return live_memory.get(node, 0)

    return sorted(
        (r for r in range(len(patterns)) if placement[r] not in failed_nodes),
        key=lambda r: (-remaining(placement[r]), r),
    )


def replace_failed_domains(
    domains: Sequence[FileDomain],
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
    memory_available: Mapping[int, int],
    config: MCIOConfig,
    failed_nodes: frozenset,
) -> FailoverDecision:
    """Re-place every domain whose aggregator host is in `failed_nodes`.

    Parameters
    ----------
    domains:
        Current domain list (the run's mutable view, in file order).
    patterns:
        All ranks' file views (from the planning allgather).
    placement:
        ``placement[rank]`` = node id.
    memory_available:
        Fresh per-node memory snapshot (an allgather taken at the round
        boundary) — identical on every rank.
    config:
        The MCIO parameters governing the placer.
    failed_nodes:
        Node ids currently marked failed; they are excluded both as
        orphan sources and as replacement targets.

    Returns
    -------
    FailoverDecision
        Replacement domains plus which indices moved / were kept.
    """
    out = list(domains)
    moved: list[int] = []
    kept: list[int] = []
    if not failed_nodes:
        return FailoverDecision(out, moved, kept)
    if config.placement_policy != "remerge":
        # A mid-flight re-placement may not mint borrowed domains: a
        # lender assignment is only valid when the engine drives the
        # lease protocol from before round 0.  Borrowed domains that
        # lose their host abort via the borrow round check instead.
        config = replace(config, placement_policy="remerge")

    # shared reservation state so multiple orphans re-placed in one pass
    # do not pile onto the same host
    live_memory = {
        node: avail
        for node, avail in memory_available.items()
        if node not in failed_nodes
    }
    host_state: dict = {}
    for did, domain in enumerate(domains):
        if placement[domain.aggregator_rank] not in failed_nodes:
            continue
        ranks = _live_ranks_for(
            domain, patterns, placement, failed_nodes, live_memory, host_state
        )
        if not ranks:
            kept.append(did)
            continue

        ext = domain.extent

        def domain_data(lo, hi, _ranks=ranks):
            return sum(patterns[r].bytes_in(lo, hi) for r in _ranks)

        # single-leaf tree: the extent is fixed mid-flight, so no
        # bisection and no remerge may alter it
        tree = PartitionTree(
            ext,
            domain_data,
            msg_ind=max(1, domain_data(ext.offset, ext.end), ext.length),
            stripe_size=0,
        )
        try:
            replacement = place_aggregators(
                tree,
                domain.group_id,
                ranks,
                patterns,
                placement,
                live_memory,
                config,
                host_state=host_state,
            )
        except PlacementError:
            kept.append(did)
            continue
        new = replacement[0]
        # keep the in-flight round geometry: extent and buffer size are
        # frozen, only the aggregator (and its paged status) change
        out[did] = replace(
            domain,
            aggregator_rank=new.aggregator_rank,
            paged=new.paged,
            lender_node=None,
        )
        moved.append(did)
    return FailoverDecision(out, moved, kept)
