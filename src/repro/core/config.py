"""Configuration dataclasses for the collective-I/O engines.

Two engines, two configs:

* :class:`TwoPhaseConfig` — ROMIO-style baseline: fixed aggregator set
  (one process per node by default), even file-domain split, fixed
  collective-buffer size, memory-oblivious.
* :class:`MCIOConfig` — memory-conscious collective I/O: the paper's four
  tuning parameters (``msg_group``, ``msg_ind``, ``mem_min``, ``nah``)
  plus the same nominal buffer size the evaluation sweeps.

``shuffle_granularity`` trades simulation fidelity for event count:

* ``"round"`` sends one shuffle message per (rank, aggregator, round)
  like the real protocol — the reference fidelity level;
* ``"batched"`` keeps the lockstep round structure and every byte of
  traffic, but aggregates each round's shuffle into one wire transfer
  per (source node, aggregator) pair with a closed-form serialization
  model (``latency x n_messages`` up front, then the summed bytes) —
  same data delivered, far fewer simulation events.  When fault
  machinery is engaged (mid-run failover enabled, or hosts already
  failed) execution silently falls back to the per-message ``"round"``
  path so degraded-mode behaviour stays exact;
* ``"domain"`` batches a rank's traffic to an aggregator into one
  message per file domain and charges the extra per-round latency
  analytically — required to simulate 1000+ rank runs in reasonable
  time, at the cost of under-charging synchronisation stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.cluster.spec import MIB

__all__ = [
    "TwoPhaseConfig",
    "MCIOConfig",
    "ExecutionMode",
    "PlacementPolicy",
    "ShuffleGranularity",
]

ShuffleGranularity = Literal["round", "batched", "domain"]
PlacementPolicy = Literal["remerge", "borrow", "hybrid"]
ExecutionMode = Literal["per-rank", "vectorized", "auto", "sharded"]


def _check_common(cb_buffer_size: int, shuffle_granularity: str) -> None:
    if cb_buffer_size < 1:
        raise ValueError("cb_buffer_size must be >= 1")
    if shuffle_granularity not in ("round", "batched", "domain"):
        raise ValueError(f"bad shuffle_granularity {shuffle_granularity!r}")


@dataclass(frozen=True)
class TwoPhaseConfig:
    """ROMIO two-phase collective I/O parameters.

    Parameters
    ----------
    cb_buffer_size:
        Collective (aggregation) buffer per aggregator, bytes.  ROMIO
        default is 16 MB; the paper sweeps 2-128 MB.
    cb_nodes:
        Number of aggregators; ``None`` = ROMIO default of exactly one
        process per node.
    stripe_align:
        Align file-domain boundaries down to stripe boundaries, avoiding
        two aggregators splitting one stripe (lock contention in Lustre).
    shuffle_granularity:
        See module docstring.
    intra_node_aggregation:
        Opt-in leader-coalesced shuffle: one leader rank per (node, file
        domain, window) collects its co-located ranks' window slices
        over the memory bus and ships them to the aggregator as a single
        wire message, cutting per-round inter-node messages from
        O(ranks touching the window) to O(nodes touching the window).
        Ignored at ``"domain"`` granularity, and execution falls back to
        the exact per-message path whenever fault machinery is engaged
        (same rule as ``"batched"``).
    """

    cb_buffer_size: int = 16 * MIB
    cb_nodes: Optional[int] = None
    stripe_align: bool = True
    shuffle_granularity: ShuffleGranularity = "round"
    intra_node_aggregation: bool = False

    def __post_init__(self) -> None:
        _check_common(self.cb_buffer_size, self.shuffle_granularity)
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ValueError("cb_nodes must be >= 1")


@dataclass(frozen=True)
class MCIOConfig:
    """Memory-conscious collective I/O parameters (paper §3).

    Parameters
    ----------
    msg_group:
        Optimal aggregation-group message size: target bytes of file
        region per aggregation group (``Msg_group``).
    msg_ind:
        Optimal per-aggregator message size: the partition tree bisects a
        group's file region until each leaf carries at most this many
        requested bytes (``Msg_ind``).
    mem_min:
        Minimum memory a host must have available to serve as an
        aggregator host at full performance (``Mem_min``).
    nah:
        Maximum aggregators hosted by one physical node (``N_ah``).
    cb_buffer_size:
        Nominal aggregation buffer per aggregator, bytes — the quantity
        the paper's evaluation sweeps.  The effective buffer of a domain
        is ``min(cb_buffer_size, domain bytes)``.
    stripe_align:
        Align bisection cuts to stripe boundaries.
    allow_paged_fallback:
        If no host in a group can satisfy the memory requirement even
        after remerging, place the aggregator on the best host anyway
        (marked paged).  If False, raise instead.
    memory_oblivious:
        Ablation switch: plan as if every node had its full physical
        memory available (disables the memory-aware part of aggregator
        location while keeping group division and the partition tree).
    adaptive_buffer:
        When even the best candidate host cannot supply the full nominal
        buffer, shrink the aggregation buffer to what the host has
        (paying extra rounds instead of paging).  This is the
        memory-conscious behaviour for workloads whose aggregation group
        lives on a single node, where relocation is impossible.
    min_buffer:
        Smallest buffer the adaptive path accepts; below this the domain
        is remerged (or placed paged as a last resort).
    shuffle_granularity:
        See module docstring.
    failover:
        Degraded-mode execution: when an aggregator's host fails
        mid-operation, re-place the orphaned domains on the next-best
        live hosts between lockstep rounds (``"round"`` granularity
        only).  With no faults injected this is timing-neutral.
    fallback_chain:
        Graceful planning degradation: if MCIO planning raises
        :class:`~repro.core.aggregator_selection.PlacementError`, fall
        back to a ROMIO-style even plan on the live hosts, and to
        independent I/O if no live aggregator host exists, instead of
        crashing the collective.  The tier actually used is recorded in
        :attr:`~repro.core.metrics.CollectiveStats.degraded_tier`.
    plan_cache:
        Opt-in reusable collective plans: key each finished plan by a
        deterministic signature of (access patterns, config, live-node
        set, memory-state bucket digest) and reuse it — partition
        trees, placement, and per-window sender memos included — when a
        later collective presents the same signature.  Invalidated when
        a node's available memory crosses a remerge-relevant bucket, on
        any fault-injector event (wire with
        :meth:`~repro.core.mcio.MemoryConsciousCollectiveIO.watch_faults`),
        and after any mid-run aggregator failover.  Hit/miss/invalidation
        counters surface in :class:`~repro.core.metrics.CollectiveStats`.
        Reuse never changes simulated time — planning costs host CPU
        only — so fault-free traces stay bit-identical.
    intra_node_aggregation:
        Opt-in leader-coalesced shuffle: one leader rank per (node, file
        domain, window) collects its co-located ranks' window slices
        over the memory bus (leader staging memory is charged against
        the node's available memory) and ships them to the aggregator
        as a single wire message per (node, domain, window) — per-round
        inter-node messages drop from O(ranks touching the window) to
        O(nodes touching the window).  Ignored at ``"domain"``
        granularity; falls back to the exact per-message path whenever
        fault machinery is engaged (same rule as ``"batched"``), which
        includes ``failover=True``.
    placement_policy:
        What to do when a leaf's candidate hosts cannot supply the
        nominal buffer (the point where the paper remerges):

        * ``"remerge"`` — the paper's behaviour, fold the leaf back into
          its sibling (default; bit-identical to the pre-borrow engine);
        * ``"borrow"`` — lease aggregation-buffer capacity on a
          memory-rich remote node instead (DOLMA-style remote memory);
          buffer staging then crosses the fabric at α–β cost.  If no
          lender qualifies the leaf is *not* remerged — it degrades to
          the paged/error path;
        * ``"hybrid"`` — try to borrow first, remerge when no lender
          qualifies.
    lease_term:
        Sim-seconds a granted lease stays valid before it must be
        renewed; the borrower renews at every round boundary once less
        than half the term remains.
    lease_retry_limit:
        Grant attempts beyond the first before the borrower gives up
        and the collective degrades (acquisition under contention).
    lease_backoff_base / lease_backoff_cap:
        Exponential backoff between grant retries:
        ``min(cap, base * 2**attempt)`` sim-seconds.
    lend_headroom:
        Bytes of uncommitted memory a lender must retain *beyond* the
        leased amount, protecting the lender's own workload.
    execution_mode:
        How collectives are simulated (DESIGN.md §11):

        * ``"per-rank"`` — every rank is a DES coroutine; the reference
          fidelity level and the default (bit-identical to prior
          releases);
        * ``"vectorized"`` / ``"auto"`` — co-located ranks are folded
          into one node-level process carrying numpy-backed per-rank
          accounting.  The planner still *refuses* vectorization per
          collective whenever faults, borrow leases, failed hosts, or a
          live data plane demand per-rank behaviour, falling back to
          per-rank coroutines and counting the refusal in
          :attr:`~repro.core.metrics.CollectiveStats.vectorized_refusals`.
          Both spellings behave identically today; ``"auto"`` documents
          intent ("vectorize when safe") for callers that never want a
          hard requirement.
        * ``"sharded"`` — independent aggregation groups are partitioned
          across worker *processes* (DESIGN.md §12), each running the
          per-rank reference on a sub-Environment, with deterministic
          stats/timeline merging.  Refuses per collective (counting the
          refusal in
          :attr:`~repro.core.metrics.CollectiveStats.sharding_refusals`)
          whenever the plan yields fewer than two groups, a node hosts
          domains from several groups, or faults/leases/data-plane
          demand a single per-rank simulation.
    """

    msg_group: int = 256 * MIB
    msg_ind: int = 32 * MIB
    mem_min: int = 32 * MIB
    nah: int = 2
    cb_buffer_size: int = 16 * MIB
    stripe_align: bool = True
    allow_paged_fallback: bool = True
    memory_oblivious: bool = False
    adaptive_buffer: bool = True
    min_buffer: int = 1 * MIB
    shuffle_granularity: ShuffleGranularity = "round"
    failover: bool = True
    fallback_chain: bool = True
    plan_cache: bool = False
    intra_node_aggregation: bool = False
    placement_policy: PlacementPolicy = "remerge"
    lease_term: float = 1.0
    lease_retry_limit: int = 4
    lease_backoff_base: float = 1e-4
    lease_backoff_cap: float = 5e-3
    lend_headroom: int = 0
    execution_mode: ExecutionMode = "per-rank"

    def __post_init__(self) -> None:
        _check_common(self.cb_buffer_size, self.shuffle_granularity)
        if self.msg_group < 1:
            raise ValueError("msg_group must be >= 1")
        if self.msg_ind < 1:
            raise ValueError("msg_ind must be >= 1")
        if self.msg_ind > self.msg_group:
            raise ValueError("msg_ind cannot exceed msg_group")
        if self.mem_min < 0:
            raise ValueError("mem_min must be >= 0")
        if self.nah < 1:
            raise ValueError("nah must be >= 1")
        if self.min_buffer < 1:
            raise ValueError("min_buffer must be >= 1")
        if self.placement_policy not in ("remerge", "borrow", "hybrid"):
            raise ValueError(f"bad placement_policy {self.placement_policy!r}")
        if self.lease_term <= 0:
            raise ValueError("lease_term must be > 0")
        if self.lease_retry_limit < 0:
            raise ValueError("lease_retry_limit must be >= 0")
        if self.lease_backoff_base <= 0 or self.lease_backoff_cap <= 0:
            raise ValueError("lease backoff parameters must be > 0")
        if self.lease_backoff_cap < self.lease_backoff_base:
            raise ValueError("lease_backoff_cap must be >= lease_backoff_base")
        if self.lend_headroom < 0:
            raise ValueError("lend_headroom must be >= 0")
        if self.execution_mode not in (
            "per-rank", "vectorized", "auto", "sharded"
        ):
            raise ValueError(f"bad execution_mode {self.execution_mode!r}")
