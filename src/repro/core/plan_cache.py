"""Reusable collective plans: signature-keyed caching of MCIO planning.

The MCIO planning pipeline (group division → partition tree → remerge →
aggregator location) runs from scratch on every collective call, yet the
dominant workloads — checkpoint loops, IOR phases, figure sweeps —
repeat the same access pattern dozens of times.  This module keys a
finished plan by a deterministic signature of everything planning reads:

* the gathered **access patterns** (value-hashed, order-sensitive);
* the planning-relevant **config** (the frozen dataclass itself);
* the **live-node set** (failed hosts are soft-excluded by the planner,
  so a node dying or recovering must produce a different key);
* the PFS **stripe size** (bisection cuts align to it);
* a **memory-state bucket digest** — each node's available memory
  quantized into the remerge-relevant buckets of
  :func:`repro.cluster.memory.availability_bucket`, so the wiggle of a
  background-load walk reuses the plan while crossing a ``Mem_min`` /
  ``Msg_ind`` threshold forces a replan.

A hit returns the cached ``(plan, tier, reason)`` triple — including the
:class:`~repro.core.engine.ExecutionPlan` with its per-window sender
memos already warm.  Entries are dropped three ways:

* **stale digest** — the signature matches but a node's memory crossed a
  bucket boundary since the plan was built (counted as an invalidation,
  then replanned);
* **fault events** — wire an injector with
  :meth:`PlanCache.on_fault_event` (see
  :meth:`~repro.core.mcio.MemoryConsciousCollectiveIO.watch_faults`) and
  every applied or reverted fault clears the cache;
* **failover** — the engine clears the cache whenever a collective
  performed a mid-run aggregator failover, so the next call replans
  against the post-failover cluster.

Cache behaviour never changes simulated time: planning costs no
simulated seconds, only host CPU, so a cache-enabled run's trace is
bit-identical to a cache-disabled run whenever the memory state is
stable enough that replanning would reproduce the cached plan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Optional, Sequence

from repro.cluster.memory import availability_bucket
from repro.obs.tracer import NULL_TRACER, PID_PLANNER

__all__ = ["PlanCache", "PlanCacheStats"]


@dataclass
class PlanCacheStats:
    """Cumulative cache counters (engine lifetime, not per collective)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache of finished planning results.

    Parameters
    ----------
    enabled:
        A disabled cache never stores or returns entries (every call is
        a pass-through), so the engine code needs no branching.
    capacity:
        Maximum distinct signatures retained; least-recently-used
        entries are evicted beyond this.
    """

    def __init__(self, enabled: bool = True, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        #: Owning tenant in a multi-tenant environment (None = sole
        #: tenant).  :meth:`on_lease_event` ignores foreign tenants'
        #: tagged leases so one job's lease churn never drops another
        #: job's entries.
        self.tenant: Optional[str] = None
        self.stats = PlanCacheStats()
        #: Reasons of explicit invalidations, newest last (diagnostics).
        self.invalidation_log: list[str] = []
        #: Trace sink; the owning engine points this at its environment's
        #: tracer before each collective (the cache itself has no env).
        self.tracer = NULL_TRACER
        self._entries: OrderedDict[Hashable, tuple[Any, Any]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    @staticmethod
    def signature(
        patterns: Sequence[Any],
        config: Any,
        failed_nodes: frozenset,
        stripe_size: int,
        lease_digest: tuple = (),
    ) -> Hashable:
        """Deterministic key of the non-memory planning inputs.

        `lease_digest` is the ledger's active-lease fingerprint
        (:meth:`repro.cluster.memory.LeaseLedger.digest`): outstanding
        remote-memory leases pin lender capacity the placer must not
        re-promise, so plans built against different lease sets never
        alias.
        """
        return (
            tuple(patterns),
            config,
            frozenset(failed_nodes),
            stripe_size,
            tuple(lease_digest),
        )

    @staticmethod
    def memory_digest(memory_available: Mapping[int, int], config: Any) -> tuple:
        """Bucketed per-node digest of the run-time memory snapshot.

        Buckets are the thresholds the planner actually compares against
        (``min_buffer``, ``Mem_min``, half the effective per-aggregator
        requirement, the nominal buffer) plus a ``Msg_ind`` quantization
        of the remaining headroom — crossing any of them can change
        remerge or placement decisions, so it must produce a different
        digest; movement inside a bucket cannot, so the plan is reused.
        """
        requirement = max(
            config.mem_min, min(config.cb_buffer_size, config.msg_ind)
        )
        thresholds = (
            config.min_buffer,
            config.mem_min,
            max(1, requirement // 2),
            config.cb_buffer_size,
        )
        return tuple(
            (node_id, availability_bucket(avail, thresholds, config.msg_ind))
            for node_id, avail in sorted(memory_available.items())
        )

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, digest: tuple) -> Optional[Any]:
        """Return the cached entry for `key`, or None (counting why).

        A present entry whose memory digest no longer matches is dropped
        and counted as an invalidation (the caller replans); an absent
        entry is a plain miss.
        """
        if not self.enabled:
            return None
        held = self._entries.get(key)
        if held is not None:
            held_digest, entry = held
            if held_digest == digest:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "plan_cache", "plan_cache.hit", PID_PLANNER, 0,
                        entries=len(self._entries),
                    )
                return entry
            del self._entries[key]
            self.stats.invalidations += 1
            self.invalidation_log.append("memory-bucket-crossed")
            if self.tracer.enabled:
                self.tracer.instant(
                    "plan_cache", "plan_cache.invalidate", PID_PLANNER, 0,
                    reason="memory-bucket-crossed",
                )
        self.stats.misses += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "plan_cache", "plan_cache.miss", PID_PLANNER, 0,
                entries=len(self._entries),
            )
        return None

    def store(self, key: Hashable, digest: tuple, entry: Any) -> None:
        """Retain `entry` under ``(key, digest)``, evicting LRU overflow."""
        if not self.enabled:
            return
        self._entries[key] = (digest, entry)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, reason: str = "explicit") -> int:
        """Drop every entry; returns how many were dropped.

        Counted once per call (not per entry): the counter tracks
        invalidation *events*, mirroring how hits and misses count
        collectives.  Calls that find an already-empty cache still count
        — the triggering event (fault, failover) happened either way.
        """
        dropped = len(self._entries)
        self._entries.clear()
        if self.enabled:
            self.stats.invalidations += 1
            self.invalidation_log.append(reason)
            if self.tracer.enabled:
                self.tracer.instant(
                    "plan_cache", "plan_cache.invalidate", PID_PLANNER, 0,
                    reason=reason, dropped=dropped,
                )
        return dropped

    def on_fault_event(self, event: Any, phase: str = "apply") -> None:
        """Fault-injector listener: any fault activity clears the cache.

        Both the apply and the revert edge invalidate — a fault ending
        (memory shock released, node recovered) changes planning inputs
        just as much as one starting.
        """
        self.invalidate(f"fault:{getattr(event, 'kind', event)}:{phase}")

    def on_lease_event(self, lease: Any, event: str) -> None:
        """Lease-ledger listener: lease churn clears the cache.

        A grant pins lender memory a cached plan may have counted on; a
        revoke or expiry frees capacity that could change placement.
        Releases at normal end-of-collective return the ledger to the
        pre-grant state the next planning pass observes anyway, so they
        do not invalidate on their own.  In a multi-tenant environment a
        lease tagged with a *different* tenant is ignored: its memory
        impact reaches this tenant through the memory-bucket digest, not
        through a cache wipe.  Untagged leases invalidate everyone.
        """
        if event not in ("grant", "revoke", "expire"):
            return
        lease_tenant = getattr(lease, "tenant", None)
        if (
            self.tenant is not None
            and lease_tenant is not None
            and lease_tenant != self.tenant
        ):
            return
        self.invalidate(f"lease:{event}")

    def clear(self) -> None:
        """Drop all entries without counting an invalidation (test aid)."""
        self._entries.clear()
