"""Persistent collective I/O: plan once, replay every timestep.

Iterative checkpoint/analysis loops re-execute the *same* collective each
timestep.  The blocking path re-pays the coordination preamble every
call: a pattern allgather, a memory-state allgather, and a planning pass
(or at best a plan-cache probe).  A :class:`PersistentCollective` — built
by ``SimFile.write_all_init`` / ``read_all_init`` — freezes the whole
execution plan after the first ``start()`` and replays it on each
subsequent one, skipping both allgathers and going straight to the
shuffle rounds:

>>> pc = fh.write_all_init()               # collective init (local)
>>> for step in range(n_timesteps):        # inside a rank process:
...     compute(step)
...     pc.start(ctx, payload)             # MPI_Start
...     yield from pc.wait(ctx)            # MPI_Wait

By default the replay runs the engine's *pipelined* executor
(``overlap=True``): each aggregator double-buffers its window so the
shuffle of round t overlaps the PFS service of round t-1 (write: window
t stages while t-1 drains to the OSTs; read: window t+1 prefetches while
t shuffles out).  ``overlap=False`` replays through the exact blocking
executor — bit-identical stats and bytes to a fresh ``write_all`` per
timestep — isolating the plan-reuse saving from the overlap saving.

Invalidation
------------
A frozen plan names concrete aggregator hosts and buffer sizes, so any
event that moves memory or kills hosts makes it stale.  The handle
subscribes to the engine's plan-invalidation feed
(:meth:`~repro.core.mcio.MemoryConsciousCollectiveIO.add_invalidation_listener`):
lease grant/revoke/expire, fault apply/revert (for injectors wired via
``watch_faults``), and mid-run aggregator failover all bump a generation
counter, and the next ``start()`` re-plans from fresh allgathers.  An
event landing *between* ``start()`` and ``wait()`` never perturbs the
in-flight epoch — the executor's own degradation machinery (drain, then
lockstep + failover, then the MCIO → two-phase → independent chain)
carries it to completion — it only forces the re-plan afterwards.

Refusal seams
-------------
The replay runs per-rank coroutines, so engines configured for the
vectorized or sharded drivers record an ``execution-mode`` refusal
(reason ``"persistent-collective"``) on each epoch's stats, mirroring
those drivers' own refusal contract.  Epochs that cannot be replayed
safely are *delegated* whole to the engine's blocking entry point with
the reason recorded on the handle: plans carrying borrow leases
(``"borrow-lease"`` — lease acquisition is a per-operation protocol) and
engines without the planning hooks (``"engine-unsupported"``, e.g. the
two-phase baseline).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

__all__ = ["PersistentCollective"]

#: Engine attributes the managed replay path requires.
_ENGINE_HOOKS = (
    "_plan_or_reuse",
    "_make_collector",
    "_independent_tier",
    "add_invalidation_listener",
)

_pc_ids = itertools.count()


class _Epoch:
    """Shared per-timestep state (one instance across all ranks)."""

    __slots__ = (
        "index", "gen", "replan", "planned", "stats", "delegated", "finishers",
    )

    def __init__(self, index: int, gen: int, replan: bool):
        self.index = index
        #: Invalidation generation pinned by the first-arriving rank; the
        #: re-plan clears staleness only up to this point, so an event
        #: firing after the pin still forces the *next* epoch to re-plan.
        self.gen = gen
        self.replan = replan
        self.planned = False
        self.stats = None
        self.delegated: Optional[str] = None
        self.finishers = 0


class PersistentCollective:
    """A frozen, replayable collective operation on one file view.

    Construct via ``SimFile.write_all_init`` / ``read_all_init``.  The
    handle is shared by all ranks (like the file); per-rank state is
    keyed internally.  Usage per timestep is ``start(ctx, payload)``
    (local, returns immediately) then ``yield from wait(ctx)``.

    ``start``/``wait`` pairs must be called in the same order on every
    rank relative to any other collective on the communicator — the
    standard MPI ordering rule for nonblocking collectives.
    """

    def __init__(self, file, op: str, overlap: bool = True):
        if op not in ("write", "read"):
            raise ValueError(f"bad op {op!r}")
        self.file = file
        self.comm = file.comm
        self.engine = file.engine
        self.op = op
        self.overlap = bool(overlap)
        self.pc_id = next(_pc_ids)
        #: Whether the engine exposes the planning hooks the managed
        #: replay needs; without them every epoch delegates.
        self.managed = all(hasattr(self.engine, h) for h in _ENGINE_HOOKS)
        # frozen plan state
        self._plan = None
        self._tier = None
        self._reason = None
        self._patterns = None
        self._cached = False
        self._plan_gen = -1
        self._inval_gen = 0
        #: Invalidation reasons observed, in order (diagnostics).
        self.invalidations: list[str] = []
        #: Planning epochs performed (1 after the first start).
        self.replans = 0
        #: Epochs delegated whole to the blocking engine path.
        self.delegations = 0
        self.last_delegation: Optional[str] = None
        self._epochs: dict[int, _Epoch] = {}
        self._rank_epoch: dict[int, int] = {}
        #: rank -> (process, epoch) of the outstanding start.
        self._active: dict[int, tuple] = {}
        if self.managed:
            self.engine.add_invalidation_listener(self._on_invalidate)

    # ------------------------------------------------------------------
    def _on_invalidate(self, reason: str) -> None:
        self._inval_gen += 1
        self.invalidations.append(reason)

    @property
    def stale(self) -> bool:
        """Whether the next ``start()`` will re-plan."""
        return self._plan_gen < self._inval_gen or self._patterns is None

    def free(self) -> None:
        """Release the handle (MPI_Request_free for the persistent op)."""
        if self._active:
            raise RuntimeError("free() with operations still in flight")
        if self.managed:
            self.engine.remove_invalidation_listener(self._on_invalidate)

    # ------------------------------------------------------------------
    def start(self, ctx, payload: Optional[np.ndarray] = None):
        """Begin this rank's next epoch (MPI_Start — local, no yield).

        The operation runs as a child process of the calling rank;
        complete it with :meth:`wait`.  At most one epoch may be
        outstanding per rank.
        """
        rank = ctx.rank
        if rank in self._active:
            raise RuntimeError(
                f"rank {rank}: start() with a previous epoch still in flight"
            )
        e = self._rank_epoch.get(rank, 0)
        self._rank_epoch[rank] = e + 1
        ep = self._epochs.get(e)
        if ep is None:
            ep = _Epoch(e, self._inval_gen, replan=not self.managed or self.stale)
            self._epochs[e] = ep
        pattern = self.file.view(ctx)
        proc = ctx.spawn(
            self._epoch_op(ctx, ep, pattern, payload),
            name=f"rank{rank}.pc{self.pc_id}.e{e}",
        )
        self._active[rank] = (proc, ep)
        return self

    def wait(self, ctx):
        """Process generator: complete this rank's outstanding epoch.

        Returns the operation's result (the payload for writes, the
        filled buffer for reads).  The last rank to complete finalizes
        the epoch's stats into ``engine.history``.
        """
        entry = self._active.pop(ctx.rank, None)
        if entry is None:
            raise RuntimeError(f"rank {ctx.rank}: wait() without start()")
        proc, ep = entry
        if not proc.triggered:
            yield proc
        ep.finishers += 1
        if ep.finishers == self.comm.size:
            self._epochs.pop(ep.index, None)
            if ep.stats is not None:
                final = ep.stats.finalize()
                self.engine.history.append(final)
                if final.failovers:
                    # same contract as the blocking path's finish: moved
                    # aggregators invalidate every frozen/cached plan
                    self.engine.plan_cache.invalidate("failover")
                    self.engine._notify_plan_invalidation("failover")
        return proc.value

    def test(self, ctx):
        """Nonblocking probe of this rank's outstanding epoch."""
        entry = self._active.get(ctx.rank)
        if entry is None:
            raise RuntimeError(f"rank {ctx.rank}: test() without start()")
        return entry[0].triggered

    # ------------------------------------------------------------------
    def _epoch_op(self, ctx, ep: _Epoch, pattern, payload):
        # deferred: repro.mpi.file imports this module, and the engine
        # module imports repro.mpi.comm — a top-level import would cycle
        from repro.core.engine import execute_collective

        engine, comm = self.engine, self.comm
        if not self.managed:
            return (
                yield from self._delegate(
                    ctx, ep, pattern, payload, "engine-unsupported"
                )
            )
        if ep.replan:
            # same coordination preamble as a fresh blocking collective;
            # frozen epochs skip both allgathers entirely
            meta_bytes = 32 * (1 + pattern.segment_count)
            patterns = yield from comm.allgather(ctx, pattern, nbytes=meta_bytes)
            mem_state = yield from comm.allgather(
                ctx,
                (
                    ctx.node.node_id,
                    ctx.node.memory.free_available,
                    ctx.node.failed,
                ),
                nbytes=16,
            )
            if not ep.planned:
                ep.planned = True
                memory_available: dict[int, int] = {}
                failed_nodes: set[int] = set()
                for node_id, avail, failed in mem_state:
                    memory_available.setdefault(node_id, avail)
                    if failed:
                        failed_nodes.add(node_id)
                (plan, tier, reason), cached = engine._plan_or_reuse(
                    patterns, memory_available, frozenset(failed_nodes)
                )
                self._plan = plan
                self._tier = tier
                self._reason = reason
                self._patterns = patterns
                self._cached = cached
                self._plan_gen = ep.gen
                self.replans += 1
        else:
            patterns = self._patterns
        plan = self._plan
        if plan is not None and any(d.lender_node is not None for d in plan.domains):
            # borrow leases are a per-operation protocol (acquire/renew/
            # release); a frozen replay cannot hold them across epochs
            return (
                yield from self._delegate(ctx, ep, pattern, payload, "borrow-lease")
            )
        if ep.stats is None:
            mode = engine.config.execution_mode
            if mode in ("vectorized", "auto"):
                engine._pending_vec_refusal = "persistent-collective"
            elif mode == "sharded":
                engine._pending_shard_refusal = "persistent-collective"
            stats = engine._make_collector(
                self.op, plan, self._tier, self._reason,
                cached=self._cached if ep.replan else True,
            )
            stats.extra["persistent"] = self.pc_id
            stats.extra["persistent_epoch"] = ep.index
            stats.extra["persistent_replanned"] = ep.replan
            ep.stats = stats
        stats = ep.stats
        if self.op == "read" and payload is None and engine.pfs.datastore is not None:
            payload = np.zeros(pattern.nbytes, dtype=np.uint8)
        if plan is None:
            # last tier of the fallback chain, same as the blocking path
            result = yield from engine._independent_tier(
                ctx, pattern, payload, self.op, stats
            )
            stats.mark_end(ctx.env.now)
            return result
        return (
            yield from execute_collective(
                ctx, comm, engine.pfs, plan, patterns, stats, self.op,
                ("pc", self.pc_id, ep.index),
                payload=payload,
                granularity=engine.config.shuffle_granularity,
                failover_config=engine.config if engine.config.failover else None,
                intra_node_aggregation=engine.config.intra_node_aggregation,
                pipelined=self.overlap,
            )
        )

    def _delegate(self, ctx, ep: _Epoch, pattern, payload, reason: str):
        if ep.delegated is None:
            ep.delegated = reason
            self.delegations += 1
            self.last_delegation = reason
        fn = self.engine.write if self.op == "write" else self.engine.read
        return (yield from fn(ctx, pattern, payload))
