"""Non-collective baselines: independent I/O and data sieving.

Independent I/O issues each rank's noncontiguous request directly to the
file system — one request per block, the worst case the per-request
overhead punishes.  Data sieving (ROMIO's other classic optimisation)
instead moves one large *covering* extent per rank and picks/places the
requested bytes in memory: reads fetch the hull and extract; writes
read-modify-write the hull.

These exist as comparison points and for the ablation benchmarks; the
paper's evaluation compares MCIO against two-phase collective I/O.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metrics import CollectiveStats, StatsCollector
from repro.core.request import AccessPattern, Extent
from repro.mpi.comm import RankContext, SimComm
from repro.pfs.filesystem import ParallelFileSystem
from repro.sim import Resource

__all__ = ["IndependentIO", "DataSievingIO"]


class _NonCollectiveBase:
    """Shared bookkeeping for the non-collective strategies."""

    name = "non-collective"

    def __init__(self, comm: SimComm, pfs: ParallelFileSystem):
        self.comm = comm
        self.pfs = pfs
        self._rank_seq: dict[int, int] = {}
        self._stats: dict[int, StatsCollector] = {}
        self.history: list[CollectiveStats] = []

    def _begin(self, ctx: RankContext, op: str) -> tuple[int, StatsCollector]:
        seq = self._rank_seq.get(ctx.rank, 0)
        self._rank_seq[ctx.rank] = seq + 1
        if seq not in self._stats:
            self._stats[seq] = StatsCollector(self.name, op, n_ranks=self.comm.size)
        stats = self._stats[seq]
        stats.mark_start(ctx.env.now)
        return seq, stats

    def _end(self, ctx: RankContext, seq: int) -> None:
        stats = self._stats.get(seq)
        if stats is None:
            return
        stats.mark_end(ctx.env.now)
        stats.extra["finishers"] = stats.extra.get("finishers", 0) + 1
        if stats.extra["finishers"] == self.comm.size:
            self.history.append(stats.finalize())
            del self._stats[seq]


class IndependentIO(_NonCollectiveBase):
    """Every rank issues its own noncontiguous requests, no coordination."""

    name = "independent"

    def write(self, ctx: RankContext, pattern: AccessPattern,
              payload: Optional[np.ndarray] = None):
        """Process generator: direct noncontiguous write."""
        seq, stats = self._begin(ctx, "write")
        yield from self.pfs.write_pattern(ctx.node, pattern, payload)
        stats.record_bytes(pattern.nbytes)
        self._end(ctx, seq)
        return payload

    def read(self, ctx: RankContext, pattern: AccessPattern,
             payload: Optional[np.ndarray] = None):
        """Process generator: direct noncontiguous read; returns the bytes."""
        seq, stats = self._begin(ctx, "read")
        data = yield from self.pfs.read_pattern(ctx.node, pattern)
        stats.record_bytes(pattern.nbytes)
        if payload is not None and data is not None:
            payload[:] = data
            data = payload
        self._end(ctx, seq)
        return data


class DataSievingIO(_NonCollectiveBase):
    """ROMIO data sieving: move the covering extent, sieve in memory.

    Worthwhile when a rank's requests are dense inside their hull;
    catastrophic when sparse (it moves the holes too).  Writes perform a
    read-modify-write of the hull, as ROMIO does.
    """

    name = "data-sieving"

    def __init__(self, comm: SimComm, pfs: ParallelFileSystem):
        super().__init__(comm, pfs)
        self._rmw_lock: Optional[Resource] = None

    def _lock(self, ctx: RankContext) -> Resource:
        """The shared sieving file lock (rebuilt if the env changed)."""
        if self._rmw_lock is None or self._rmw_lock.env is not ctx.env:
            self._rmw_lock = Resource(ctx.env, capacity=1, name="sieve.rmw")
        return self._rmw_lock

    def write(self, ctx: RankContext, pattern: AccessPattern,
              payload: Optional[np.ndarray] = None):
        """Process generator: read-modify-write of the covering extent.

        As in ROMIO, the read-modify-write holds a file lock: two ranks'
        hulls may overlap even when their requested bytes are disjoint,
        and an unserialized RMW would write back stale hole bytes over a
        concurrent writer's data.
        """
        seq, stats = self._begin(ctx, "write")
        if not pattern.empty:
            hull = Extent(pattern.start, pattern.end - pattern.start)
            req = self._lock(ctx).request()
            yield req
            try:
                base = yield from self.pfs.read_extent(ctx.node, hull)
                yield from ctx.node.memcopy(hull.length)
                data = None
                if base is not None and payload is not None:
                    data = np.array(base, dtype=np.uint8)
                    for off, ln, buf in pattern.iter_mapped_extents():
                        data[off - hull.offset : off - hull.offset + ln] = (
                            payload[buf : buf + ln]
                        )
                yield from self.pfs.write_extent(ctx.node, hull, data)
            finally:
                self._lock(ctx).release(req)
            stats.record_bytes(pattern.nbytes)
        self._end(ctx, seq)
        return payload

    def read(self, ctx: RankContext, pattern: AccessPattern,
             payload: Optional[np.ndarray] = None):
        """Process generator: read the covering extent, extract the bytes."""
        seq, stats = self._begin(ctx, "read")
        out = payload
        if not pattern.empty:
            hull = Extent(pattern.start, pattern.end - pattern.start)
            base = yield from self.pfs.read_extent(ctx.node, hull)
            yield from ctx.node.memcopy(pattern.nbytes)
            if base is not None:
                if out is None:
                    out = np.zeros(pattern.nbytes, dtype=np.uint8)
                for off, ln, buf in pattern.iter_mapped_extents():
                    out[buf : buf + ln] = base[off - hull.offset : off - hull.offset + ln]
            stats.record_bytes(pattern.nbytes)
        self._end(ctx, seq)
        return out
