"""Instrumentation for collective-I/O runs.

A :class:`StatsCollector` is threaded through an engine run; after the run
it folds into a :class:`CollectiveStats` summary carrying exactly the
quantities the paper argues about:

* end-to-end time and effective bandwidth;
* per-aggregator buffer memory (peak, mean, variance across aggregators) —
  the "memory pressure" and "memory variance" claims;
* paged aggregator count — how often aggregation buffers spilled;
* shuffle traffic split intra-node / inter-node / inter-group — MCIO's
  invariant is zero inter-group bytes;
* round and request counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["StatsCollector", "CollectiveStats"]


@dataclass
class CollectiveStats:
    """Summary of one collective read or write operation."""

    strategy: str
    op: str
    total_bytes: int
    elapsed: float
    n_ranks: int
    n_aggregators: int
    aggregator_ranks: tuple[int, ...]
    #: peak aggregation-buffer bytes per aggregator rank
    agg_buffer_bytes: dict[int, int]
    #: bytes by which each aggregator's host memory was overcommitted at
    #: buffer-allocation time (0 for healthy placements)
    agg_overcommit_bytes: dict[int, int]
    paged_aggregators: int
    rounds_total: int
    shuffle_intra_node_bytes: int
    shuffle_inter_node_bytes: int
    shuffle_inter_group_bytes: int
    n_groups: int = 1
    extra: dict = field(default_factory=dict)
    #: Which tier actually served the collective when the primary planner
    #: could not: None = the strategy's own plan, else "two-phase" or
    #: "independent" (the graceful-degradation chain).
    degraded_tier: Optional[str] = None
    #: PFS client retries / abandoned requests during this operation.
    io_retries: int = 0
    io_abandons: int = 0
    #: Aggregator failovers performed mid-operation (failed host replaced).
    failovers: int = 0
    #: True when this collective reused a cached plan instead of running
    #: the planning pipeline (always False with the cache disabled).
    plan_cached: bool = False
    #: Cumulative plan-cache counters of the owning engine as of this
    #: operation (monotone across an engine's history).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    #: Partition-tree data-size evaluations performed while planning this
    #: collective (0 on a cache hit — the work a reused plan avoided).
    planning_tree_queries: int = 0

    @property
    def bandwidth(self) -> float:
        """Effective bytes/second of the collective operation."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def bandwidth_mib(self) -> float:
        """Effective MiB/second (the unit the paper's figures use)."""
        return self.bandwidth / (1024.0**2)

    @property
    def agg_memory_mean(self) -> float:
        """Mean aggregation-buffer bytes across aggregators."""
        if not self.agg_buffer_bytes:
            return 0.0
        return float(np.mean(list(self.agg_buffer_bytes.values())))

    @property
    def agg_memory_std(self) -> float:
        """Std-dev of aggregation-buffer bytes across aggregators.

        The paper's "variance among processes" claim: MCIO should show a
        smaller spread than the baseline under heterogeneous memory.
        """
        if not self.agg_buffer_bytes:
            return 0.0
        return float(np.std(list(self.agg_buffer_bytes.values())))

    @property
    def agg_memory_peak(self) -> int:
        """Largest aggregation buffer any aggregator held."""
        if not self.agg_buffer_bytes:
            return 0
        return max(self.agg_buffer_bytes.values())

    @property
    def overcommit_mean(self) -> float:
        """Mean host-memory overcommit across aggregators (bytes).

        This is the paper's "memory pressure": how far aggregation
        buffers spilled past what their hosts actually had.
        """
        if not self.agg_overcommit_bytes:
            return 0.0
        return float(np.mean(list(self.agg_overcommit_bytes.values())))

    @property
    def overcommit_std(self) -> float:
        """Spread of host-memory overcommit across aggregators.

        The paper's "variance among processes" claim: memory-conscious
        placement should flatten this to ~zero.
        """
        if not self.agg_overcommit_bytes:
            return 0.0
        return float(np.std(list(self.agg_overcommit_bytes.values())))

    @property
    def overcommit_peak(self) -> int:
        """Worst single-aggregator overcommit (bytes)."""
        if not self.agg_overcommit_bytes:
            return 0
        return max(self.agg_overcommit_bytes.values())

    @property
    def tier(self) -> str:
        """The tier that served the collective ("mcio", "two-phase", ...)."""
        return self.degraded_tier if self.degraded_tier else self.strategy

    def summary(self) -> str:
        """One-line human-readable digest."""
        degraded = (
            f", degraded->{self.degraded_tier}" if self.degraded_tier else ""
        )
        resilience = ""
        if self.io_retries or self.failovers or self.io_abandons:
            resilience = (
                f", {self.io_retries} retries, {self.failovers} failovers"
            )
        return (
            f"{self.strategy} {self.op}: {self.bandwidth_mib:8.1f} MiB/s  "
            f"({self.total_bytes / 1024 / 1024:.0f} MiB in {self.elapsed:.3f} s, "
            f"{self.n_aggregators} aggs, {self.paged_aggregators} paged, "
            f"{self.rounds_total} rounds{degraded}{resilience})"
        )


class StatsCollector:
    """Mutable accumulator shared by all rank processes during one run."""

    def __init__(self, strategy: str, op: str, n_ranks: int):
        self.strategy = strategy
        self.op = op
        self.n_ranks = n_ranks
        self.total_bytes = 0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.agg_buffer_bytes: dict[int, int] = {}
        self.agg_overcommit_bytes: dict[int, int] = {}
        self.paged_aggregators: set[int] = set()
        self.rounds_total = 0
        self.shuffle_intra_node_bytes = 0
        self.shuffle_inter_node_bytes = 0
        self.shuffle_inter_group_bytes = 0
        self.n_groups = 1
        self.extra: dict = {}
        self.degraded_tier: Optional[str] = None
        self.failovers = 0
        self.plan_cached = False
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_invalidations = 0
        self.planning_tree_queries = 0
        self._pfs = None
        self._pfs_retries0 = 0
        self._pfs_abandons0 = 0

    # ------------------------------------------------------------------
    def mark_start(self, now: float) -> None:
        """Record the earliest entry time across ranks."""
        if self.start_time is None or now < self.start_time:
            self.start_time = now

    def mark_end(self, now: float) -> None:
        """Record the latest exit time across ranks."""
        if self.end_time is None or now > self.end_time:
            self.end_time = now

    def record_aggregator(
        self, rank: int, buffer_bytes: int, paged: bool, overcommit_bytes: int = 0
    ) -> None:
        """Register an aggregator's buffer commitment."""
        self.agg_buffer_bytes[rank] = max(
            self.agg_buffer_bytes.get(rank, 0), buffer_bytes
        )
        self.agg_overcommit_bytes[rank] = max(
            self.agg_overcommit_bytes.get(rank, 0), int(overcommit_bytes)
        )
        if paged:
            self.paged_aggregators.add(rank)

    def record_shuffle(
        self, nbytes: int, same_node: bool, same_group: bool = True
    ) -> None:
        """Account one shuffle message."""
        if same_node:
            self.shuffle_intra_node_bytes += nbytes
        else:
            self.shuffle_inter_node_bytes += nbytes
        if not same_group:
            self.shuffle_inter_group_bytes += nbytes

    def record_rounds(self, rounds: int) -> None:
        """Add an aggregator's executed round count."""
        self.rounds_total += rounds

    def record_bytes(self, nbytes: int) -> None:
        """Add bytes moved to/from the file system."""
        self.total_bytes += nbytes

    def set_tier(self, tier: Optional[str]) -> None:
        """Record the degradation tier that served the collective."""
        self.degraded_tier = tier

    def record_failover(self, count: int = 1) -> None:
        """Count aggregator failovers performed during the run."""
        self.failovers += count

    def record_plan_cache(
        self, cached: bool, cache_stats=None, tree_queries: int = 0
    ) -> None:
        """Record how planning was served (cache hit vs fresh pipeline)."""
        self.plan_cached = cached
        self.planning_tree_queries = int(tree_queries)
        if cache_stats is not None:
            self.plan_cache_hits = cache_stats.hits
            self.plan_cache_misses = cache_stats.misses
            self.plan_cache_invalidations = cache_stats.invalidations

    def attach_pfs(self, pfs) -> None:
        """Snapshot the file system's retry counters at operation start.

        :meth:`finalize` reports the *delta* accumulated while this
        operation ran.  Concurrent operations on the same file system
        each see the union of retries in their window.
        """
        if self._pfs is None:
            self._pfs = pfs
            self._pfs_retries0 = pfs.io_retries
            self._pfs_abandons0 = pfs.io_abandons

    # ------------------------------------------------------------------
    def finalize(self) -> CollectiveStats:
        """Fold into an immutable summary."""
        if self.start_time is None or self.end_time is None:
            raise RuntimeError("run was never marked started/ended")
        return CollectiveStats(
            strategy=self.strategy,
            op=self.op,
            total_bytes=self.total_bytes,
            elapsed=self.end_time - self.start_time,
            n_ranks=self.n_ranks,
            n_aggregators=len(self.agg_buffer_bytes),
            aggregator_ranks=tuple(sorted(self.agg_buffer_bytes)),
            agg_buffer_bytes=dict(self.agg_buffer_bytes),
            agg_overcommit_bytes=dict(self.agg_overcommit_bytes),
            paged_aggregators=len(self.paged_aggregators),
            rounds_total=self.rounds_total,
            shuffle_intra_node_bytes=self.shuffle_intra_node_bytes,
            shuffle_inter_node_bytes=self.shuffle_inter_node_bytes,
            shuffle_inter_group_bytes=self.shuffle_inter_group_bytes,
            n_groups=self.n_groups,
            extra=dict(self.extra),
            degraded_tier=self.degraded_tier,
            io_retries=(
                self._pfs.io_retries - self._pfs_retries0 if self._pfs else 0
            ),
            io_abandons=(
                self._pfs.io_abandons - self._pfs_abandons0 if self._pfs else 0
            ),
            failovers=self.failovers,
            plan_cached=self.plan_cached,
            plan_cache_hits=self.plan_cache_hits,
            plan_cache_misses=self.plan_cache_misses,
            plan_cache_invalidations=self.plan_cache_invalidations,
            planning_tree_queries=self.planning_tree_queries,
        )
