"""Instrumentation for collective-I/O runs.

A :class:`StatsCollector` is threaded through an engine run; after the run
it folds into a :class:`CollectiveStats` summary carrying exactly the
quantities the paper argues about:

* end-to-end time and effective bandwidth;
* per-aggregator buffer memory (peak, mean, variance across aggregators) —
  the "memory pressure" and "memory variance" claims;
* paged aggregator count — how often aggregation buffers spilled;
* shuffle traffic split intra-node / inter-node / inter-group — MCIO's
  invariant is zero inter-group bytes;
* round and request counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = ["StatsCollector", "CollectiveStats"]

#: JSON-safe scalar types kept when serializing ``extra`` (runtime objects
#: like partition trees are dropped, matching the persistence contract).
_SCALARS = (int, float, str, bool)


@dataclass
class CollectiveStats:
    """Summary of one collective read or write operation."""

    strategy: str
    op: str
    total_bytes: int
    elapsed: float
    n_ranks: int
    n_aggregators: int
    aggregator_ranks: tuple[int, ...]
    #: peak aggregation-buffer bytes per aggregator rank
    agg_buffer_bytes: dict[int, int]
    #: bytes by which each aggregator's host memory was overcommitted at
    #: buffer-allocation time (0 for healthy placements)
    agg_overcommit_bytes: dict[int, int]
    paged_aggregators: int
    rounds_total: int
    shuffle_intra_node_bytes: int
    shuffle_inter_node_bytes: int
    shuffle_inter_group_bytes: int
    n_groups: int = 1
    extra: dict = field(default_factory=dict)
    #: Which tier actually served the collective when the primary planner
    #: could not: None = the strategy's own plan, else "two-phase" or
    #: "independent" (the graceful-degradation chain).
    degraded_tier: Optional[str] = None
    #: PFS client retries / abandoned requests during this operation.
    io_retries: int = 0
    io_abandons: int = 0
    #: Aggregator failovers performed mid-operation (failed host replaced).
    failovers: int = 0
    #: True when this collective reused a cached plan instead of running
    #: the planning pipeline (always False with the cache disabled).
    plan_cached: bool = False
    #: Cumulative plan-cache counters of the owning engine as of this
    #: operation (monotone across an engine's history).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    #: Partition-tree data-size evaluations performed while planning this
    #: collective (0 on a cache hit — the work a reused plan avoided).
    planning_tree_queries: int = 0
    #: Remote-memory lease lifecycle counts for this collective
    #: (borrowed aggregation buffers; all zero outside borrow placements).
    leases_granted: int = 0
    leases_renewed: int = 0
    leases_revoked: int = 0
    leases_expired: int = 0
    #: Bytes staged to / fetched from leased remote buffers over the fabric.
    borrow_bytes: int = 0
    #: Mid-collective borrow aborts that degraded the run back to remerge.
    borrow_fallbacks: int = 0
    #: Intra-node leader bundles degraded to per-rank sends because the
    #: leader's node failed between election and ship.
    ina_fallbacks: int = 0
    #: How this collective was simulated: ``"per-rank"`` coroutines (the
    #: reference) or the node-level ``"vectorized"`` path (DESIGN.md §11).
    execution_mode: str = "per-rank"
    #: Times vectorization was requested but refused for this collective
    #: (faults/borrow/failover demanded per-rank behaviour); the refusal
    #: reason lands in ``extra["vectorized_refusal"]``.
    vectorized_refusals: int = 0
    #: Times group-sharded execution was requested but refused for this
    #: collective (single group, shared aggregator hosts, faults, leases,
    #: a live data plane — see DESIGN.md §12); the refusal reason lands
    #: in ``extra["sharding_refusal"]``.
    sharding_refusals: int = 0

    @property
    def bandwidth(self) -> float:
        """Effective bytes/second of the collective operation."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def bandwidth_mib(self) -> float:
        """Effective MiB/second (the unit the paper's figures use)."""
        return self.bandwidth / (1024.0**2)

    @property
    def agg_memory_mean(self) -> float:
        """Mean aggregation-buffer bytes across aggregators."""
        if not self.agg_buffer_bytes:
            return 0.0
        return float(np.mean(list(self.agg_buffer_bytes.values())))

    @property
    def agg_memory_std(self) -> float:
        """Std-dev of aggregation-buffer bytes across aggregators.

        The paper's "variance among processes" claim: MCIO should show a
        smaller spread than the baseline under heterogeneous memory.
        """
        if not self.agg_buffer_bytes:
            return 0.0
        return float(np.std(list(self.agg_buffer_bytes.values())))

    @property
    def agg_memory_peak(self) -> int:
        """Largest aggregation buffer any aggregator held."""
        if not self.agg_buffer_bytes:
            return 0
        return max(self.agg_buffer_bytes.values())

    @property
    def overcommit_mean(self) -> float:
        """Mean host-memory overcommit across aggregators (bytes).

        This is the paper's "memory pressure": how far aggregation
        buffers spilled past what their hosts actually had.
        """
        if not self.agg_overcommit_bytes:
            return 0.0
        return float(np.mean(list(self.agg_overcommit_bytes.values())))

    @property
    def overcommit_std(self) -> float:
        """Spread of host-memory overcommit across aggregators.

        The paper's "variance among processes" claim: memory-conscious
        placement should flatten this to ~zero.
        """
        if not self.agg_overcommit_bytes:
            return 0.0
        return float(np.std(list(self.agg_overcommit_bytes.values())))

    @property
    def overcommit_peak(self) -> int:
        """Worst single-aggregator overcommit (bytes)."""
        if not self.agg_overcommit_bytes:
            return 0
        return max(self.agg_overcommit_bytes.values())

    @property
    def tier(self) -> str:
        """The tier that served the collective ("mcio", "two-phase", ...)."""
        return self.degraded_tier if self.degraded_tier else self.strategy

    def summary(self) -> str:
        """One-line human-readable digest."""
        degraded = (
            f", degraded->{self.degraded_tier}" if self.degraded_tier else ""
        )
        resilience = ""
        if self.io_retries or self.failovers or self.io_abandons:
            resilience = (
                f", {self.io_retries} retries, {self.failovers} failovers"
            )
        return (
            f"{self.strategy} {self.op}: {self.bandwidth_mib:8.1f} MiB/s  "
            f"({self.total_bytes / 1024 / 1024:.0f} MiB in {self.elapsed:.3f} s, "
            f"{self.n_aggregators} aggs, {self.paged_aggregators} paged, "
            f"{self.rounds_total} rounds{degraded}{resilience})"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Serialize to plain JSON types (the one canonical encoding).

        Dict keys become strings (JSON objects), tuples become lists and
        ``extra`` is filtered to scalar values — runtime objects stashed
        there (trees, plans) are not representable and are dropped.
        """
        return {
            "strategy": self.strategy,
            "op": self.op,
            "total_bytes": self.total_bytes,
            "elapsed": self.elapsed,
            "n_ranks": self.n_ranks,
            "n_aggregators": self.n_aggregators,
            "aggregator_ranks": list(self.aggregator_ranks),
            "agg_buffer_bytes": {
                str(k): v for k, v in self.agg_buffer_bytes.items()
            },
            "agg_overcommit_bytes": {
                str(k): v for k, v in self.agg_overcommit_bytes.items()
            },
            "paged_aggregators": self.paged_aggregators,
            "rounds_total": self.rounds_total,
            "shuffle_intra_node_bytes": self.shuffle_intra_node_bytes,
            "shuffle_inter_node_bytes": self.shuffle_inter_node_bytes,
            "shuffle_inter_group_bytes": self.shuffle_inter_group_bytes,
            "n_groups": self.n_groups,
            "extra": {
                k: v for k, v in self.extra.items() if isinstance(v, _SCALARS)
            },
            "degraded_tier": self.degraded_tier,
            "io_retries": self.io_retries,
            "io_abandons": self.io_abandons,
            "failovers": self.failovers,
            "plan_cached": self.plan_cached,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_invalidations": self.plan_cache_invalidations,
            "planning_tree_queries": self.planning_tree_queries,
            "leases_granted": self.leases_granted,
            "leases_renewed": self.leases_renewed,
            "leases_revoked": self.leases_revoked,
            "leases_expired": self.leases_expired,
            "borrow_bytes": self.borrow_bytes,
            "borrow_fallbacks": self.borrow_fallbacks,
            "ina_fallbacks": self.ina_fallbacks,
            "execution_mode": self.execution_mode,
            "vectorized_refusals": self.vectorized_refusals,
            "sharding_refusals": self.sharding_refusals,
        }

    @classmethod
    def from_json(cls, d: dict) -> "CollectiveStats":
        """Rebuild from :meth:`to_json` output.

        Fields missing from `d` (older files) fall back to the dataclass
        defaults, so documents written before a field existed still load.
        """
        return cls(
            strategy=d["strategy"],
            op=d["op"],
            total_bytes=d["total_bytes"],
            elapsed=d["elapsed"],
            n_ranks=d["n_ranks"],
            n_aggregators=d["n_aggregators"],
            aggregator_ranks=tuple(d["aggregator_ranks"]),
            agg_buffer_bytes={
                int(k): v for k, v in d["agg_buffer_bytes"].items()
            },
            agg_overcommit_bytes={
                int(k): v for k, v in d.get("agg_overcommit_bytes", {}).items()
            },
            paged_aggregators=d["paged_aggregators"],
            rounds_total=d["rounds_total"],
            shuffle_intra_node_bytes=d["shuffle_intra_node_bytes"],
            shuffle_inter_node_bytes=d["shuffle_inter_node_bytes"],
            shuffle_inter_group_bytes=d["shuffle_inter_group_bytes"],
            n_groups=d.get("n_groups", 1),
            extra=dict(d.get("extra", {})),
            degraded_tier=d.get("degraded_tier"),
            io_retries=d.get("io_retries", 0),
            io_abandons=d.get("io_abandons", 0),
            failovers=d.get("failovers", 0),
            plan_cached=d.get("plan_cached", False),
            plan_cache_hits=d.get("plan_cache_hits", 0),
            plan_cache_misses=d.get("plan_cache_misses", 0),
            plan_cache_invalidations=d.get("plan_cache_invalidations", 0),
            planning_tree_queries=d.get("planning_tree_queries", 0),
            leases_granted=d.get("leases_granted", 0),
            leases_renewed=d.get("leases_renewed", 0),
            leases_revoked=d.get("leases_revoked", 0),
            leases_expired=d.get("leases_expired", 0),
            borrow_bytes=d.get("borrow_bytes", 0),
            borrow_fallbacks=d.get("borrow_fallbacks", 0),
            ina_fallbacks=d.get("ina_fallbacks", 0),
            execution_mode=d.get("execution_mode", "per-rank"),
            vectorized_refusals=d.get("vectorized_refusals", 0),
            sharding_refusals=d.get("sharding_refusals", 0),
        )

    # ------------------------------------------------------------------
    # sharded-execution merge
    # ------------------------------------------------------------------
    #: Per-operation counters that sum across shards: each shard ran a
    #: disjoint subset of the plan's domains, so its counts are disjoint
    #: contributions to the whole collective's totals.
    _MERGE_SUM_FIELDS = (
        "total_bytes",
        "paged_aggregators",
        "rounds_total",
        "shuffle_intra_node_bytes",
        "shuffle_inter_node_bytes",
        "shuffle_inter_group_bytes",
        "n_groups",
        "io_retries",
        "io_abandons",
        "failovers",
        "leases_granted",
        "leases_renewed",
        "leases_revoked",
        "leases_expired",
        "borrow_bytes",
        "borrow_fallbacks",
        "ina_fallbacks",
        "vectorized_refusals",
        "sharding_refusals",
    )
    #: Fields every shard must agree on for a merge to be meaningful.
    _MERGE_AGREE_FIELDS = ("strategy", "op", "n_ranks", "degraded_tier")
    #: Cumulative engine-level counters (monotone across an engine's
    #: history): the merged view is the furthest any shard saw.
    _MERGE_MAX_FIELDS = (
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_invalidations",
        "planning_tree_queries",
    )

    @classmethod
    def merge(cls, shards: "Sequence[CollectiveStats]") -> "CollectiveStats":
        """Fold per-shard stats of one collective into a single summary.

        Registry-aware by field class, mirroring how a single
        :class:`StatsCollector` would have accumulated the same run:

        * **counters** (bytes, rounds, shuffle split, lease/fault
          events, ``n_groups``) sum — shards execute disjoint domain
          subsets, so their counts are disjoint contributions;
        * **gauges** (``agg_buffer_bytes``, ``agg_overcommit_bytes``)
          max-merge per rank label, exactly the registry's ``set_max``
          semantics — an aggregator serving domains in two shards keeps
          its peak, not the sum;
        * **sim-time** (``elapsed``) maxes: shards run concurrently on
          one simulated machine, so the collective takes as long as its
          slowest shard;
        * cumulative engine counters (``plan_cache_*``,
          ``planning_tree_queries``) max-merge (monotone views);
        * ``execution_mode`` is kept when uniform, else ``"mixed"``.

        Raises ``ValueError`` on an empty shard list or when shards
        disagree on identity fields (strategy, op, rank count, tier).
        """
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge an empty shard list")
        first = shards[0]
        for other in shards[1:]:
            for name in cls._MERGE_AGREE_FIELDS:
                a, b = getattr(first, name), getattr(other, name)
                if a != b:
                    raise ValueError(
                        f"shards disagree on {name}: {a!r} != {b!r}"
                    )
        agg_buffer: dict[int, int] = {}
        agg_overcommit: dict[int, int] = {}
        for s in shards:
            for rank, v in s.agg_buffer_bytes.items():
                agg_buffer[rank] = max(agg_buffer.get(rank, 0), v)
            for rank, v in s.agg_overcommit_bytes.items():
                agg_overcommit[rank] = max(agg_overcommit.get(rank, 0), v)
        sums = {
            name: sum(getattr(s, name) for s in shards)
            for name in cls._MERGE_SUM_FIELDS
        }
        maxes = {
            name: max(getattr(s, name) for s in shards)
            for name in cls._MERGE_MAX_FIELDS
        }
        # a single-shard merge must be the identity, so n_groups only
        # sums when the groups are actually split across shards
        if len(shards) == 1:
            sums["n_groups"] = first.n_groups
            sums["paged_aggregators"] = first.paged_aggregators
        modes = {s.execution_mode for s in shards}
        extra: dict = {}
        for s in shards:
            extra.update(s.extra)
        return cls(
            strategy=first.strategy,
            op=first.op,
            total_bytes=sums["total_bytes"],
            elapsed=max(s.elapsed for s in shards),
            n_ranks=first.n_ranks,
            n_aggregators=len(agg_buffer),
            aggregator_ranks=tuple(sorted(agg_buffer)),
            agg_buffer_bytes=agg_buffer,
            agg_overcommit_bytes=agg_overcommit,
            paged_aggregators=sums["paged_aggregators"],
            rounds_total=sums["rounds_total"],
            shuffle_intra_node_bytes=sums["shuffle_intra_node_bytes"],
            shuffle_inter_node_bytes=sums["shuffle_inter_node_bytes"],
            shuffle_inter_group_bytes=sums["shuffle_inter_group_bytes"],
            n_groups=sums["n_groups"],
            extra=extra,
            degraded_tier=first.degraded_tier,
            io_retries=sums["io_retries"],
            io_abandons=sums["io_abandons"],
            failovers=sums["failovers"],
            plan_cached=any(s.plan_cached for s in shards),
            plan_cache_hits=maxes["plan_cache_hits"],
            plan_cache_misses=maxes["plan_cache_misses"],
            plan_cache_invalidations=maxes["plan_cache_invalidations"],
            planning_tree_queries=maxes["planning_tree_queries"],
            leases_granted=sums["leases_granted"],
            leases_renewed=sums["leases_renewed"],
            leases_revoked=sums["leases_revoked"],
            leases_expired=sums["leases_expired"],
            borrow_bytes=sums["borrow_bytes"],
            borrow_fallbacks=sums["borrow_fallbacks"],
            ina_fallbacks=sums["ina_fallbacks"],
            execution_mode=modes.pop() if len(modes) == 1 else "mixed",
            vectorized_refusals=sums["vectorized_refusals"],
            sharding_refusals=sums["sharding_refusals"],
        )


class StatsCollector:
    """Mutable accumulator shared by all rank processes during one run.

    All quantitative accounting lives in a
    :class:`~repro.obs.metrics.MetricsRegistry` (one per collector unless
    a shared one is injected); the legacy attribute surface
    (``total_bytes``, ``shuffle_intra_node_bytes``, ...) is preserved as
    read-only views over the registry, so :meth:`finalize` and every
    live reader see the same numbers by construction.

    Counters and gauges store the exact integers they are given — the
    golden-trace suite compares collective summaries bit-for-bit.
    """

    def __init__(
        self,
        strategy: str,
        op: str,
        n_ranks: int,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.strategy = strategy
        self.op = op
        self.n_ranks = n_ranks
        #: Backing store for all counted/gauged quantities.  Injecting a
        #: shared registry merges accounting across collectors (the
        #: instruments are get-or-create), so per-operation summaries
        #: want the default fresh registry.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_io_bytes = self.registry.counter(
            "io_bytes_total", "bytes moved to/from the file system"
        )
        self._c_shuffle = self.registry.counter(
            "shuffle_bytes_total",
            "shuffle traffic by locality",
            labelnames=("path",),
        )
        self._c_rounds = self.registry.counter(
            "shuffle_rounds_total", "aggregator round executions"
        )
        self._c_failovers = self.registry.counter(
            "failovers_total", "mid-operation aggregator failovers"
        )
        self._g_agg_buffer = self.registry.gauge(
            "agg_buffer_bytes",
            "peak aggregation-buffer bytes per aggregator rank",
            labelnames=("rank",),
        )
        self._g_agg_overcommit = self.registry.gauge(
            "agg_overcommit_bytes",
            "peak host-memory overcommit per aggregator rank",
            labelnames=("rank",),
        )
        self._g_agg_paged = self.registry.gauge(
            "agg_paged",
            "1 for aggregator ranks whose buffers spilled to paging",
            labelnames=("rank",),
        )
        self._h_shuffle_msg = self.registry.histogram(
            "shuffle_message_bytes",
            "per-message shuffle payload sizes",
            labelnames=("path",),
        )
        self._c_leases = self.registry.counter(
            "leases_total",
            "remote-memory lease lifecycle events",
            labelnames=("event",),
        )
        self._c_borrow_bytes = self.registry.counter(
            "borrow_bytes_total",
            "bytes staged to/fetched from leased remote buffers",
        )
        self._c_borrow_fallbacks = self.registry.counter(
            "borrow_fallbacks_total",
            "mid-collective borrow aborts degraded back to remerge",
        )
        self._c_ina_fallbacks = self.registry.counter(
            "ina_fallbacks_total",
            "intra-node leader bundles degraded to per-rank sends",
        )
        self._c_vec_refusals = self.registry.counter(
            "vectorized_refusals_total",
            "collectives that refused vectorization and ran per-rank",
        )
        self._c_shard_refusals = self.registry.counter(
            "sharding_refusals_total",
            "collectives that refused group sharding and ran per-rank",
        )
        #: Execution path that served this collective (DESIGN.md §11).
        self.execution_mode = "per-rank"
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.n_groups = 1
        self.extra: dict = {}
        self.degraded_tier: Optional[str] = None
        self.plan_cached = False
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_invalidations = 0
        self.planning_tree_queries = 0
        self._pfs = None
        self._pfs_retries0 = 0
        self._pfs_abandons0 = 0
        #: Per-(op_seq, round) frozen failed-node sets: the first rank to
        #: reach a round pins the snapshot all ranks of that round use,
        #: keeping per-rank degradation decisions consistent even when a
        #: node fails "between" two ranks' turns at the same sim instant.
        self._round_failed: dict = {}
        #: Optional :class:`~repro.core.audit.ConservationAuditor`; when
        #: set, engines report attempts and I/O extents through it.
        self.auditor = None

    # ------------------------------------------------------------------
    # registry views (the legacy attribute surface)
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Bytes moved to/from the file system so far."""
        return self._c_io_bytes.value()

    @property
    def rounds_total(self) -> int:
        """Aggregator round executions so far."""
        return self._c_rounds.value()

    @property
    def shuffle_intra_node_bytes(self) -> int:
        """Shuffle bytes that stayed on their sender's node."""
        return self._c_shuffle.value(path="intra_node")

    @property
    def shuffle_inter_node_bytes(self) -> int:
        """Shuffle bytes that crossed nodes."""
        return self._c_shuffle.value(path="inter_node")

    @property
    def shuffle_inter_group_bytes(self) -> int:
        """Shuffle bytes that crossed group boundaries (MCIO: zero)."""
        return self._c_shuffle.value(path="inter_group")

    @property
    def failovers(self) -> int:
        """Aggregator failovers performed so far."""
        return self._c_failovers.value()

    @property
    def agg_buffer_bytes(self) -> dict[int, int]:
        """Peak aggregation-buffer bytes per aggregator rank."""
        return {rank: v for (rank,), v in self._g_agg_buffer.values().items()}

    @property
    def agg_overcommit_bytes(self) -> dict[int, int]:
        """Peak host-memory overcommit per aggregator rank."""
        return {
            rank: v for (rank,), v in self._g_agg_overcommit.values().items()
        }

    @property
    def paged_aggregators(self) -> set[int]:
        """Ranks whose aggregation buffers spilled to paging."""
        return {rank for (rank,) in self._g_agg_paged.values()}

    @property
    def leases_granted(self) -> int:
        return self._c_leases.value(event="granted")

    @property
    def leases_renewed(self) -> int:
        return self._c_leases.value(event="renewed")

    @property
    def leases_revoked(self) -> int:
        return self._c_leases.value(event="revoked")

    @property
    def leases_expired(self) -> int:
        return self._c_leases.value(event="expired")

    @property
    def borrow_bytes(self) -> int:
        return self._c_borrow_bytes.value()

    @property
    def borrow_fallbacks(self) -> int:
        return self._c_borrow_fallbacks.value()

    @property
    def ina_fallbacks(self) -> int:
        return self._c_ina_fallbacks.value()

    @property
    def vectorized_refusals(self) -> int:
        return self._c_vec_refusals.value()

    @property
    def sharding_refusals(self) -> int:
        return self._c_shard_refusals.value()

    # ------------------------------------------------------------------
    def mark_start(self, now: float) -> None:
        """Record the earliest entry time across ranks."""
        if self.start_time is None or now < self.start_time:
            self.start_time = now

    def mark_end(self, now: float) -> None:
        """Record the latest exit time across ranks."""
        if self.end_time is None or now > self.end_time:
            self.end_time = now

    def record_aggregator(
        self, rank: int, buffer_bytes: int, paged: bool, overcommit_bytes: int = 0
    ) -> None:
        """Register an aggregator's buffer commitment."""
        self._g_agg_buffer.set_max(buffer_bytes, rank=rank)
        self._g_agg_overcommit.set_max(int(overcommit_bytes), rank=rank)
        if paged:
            self._g_agg_paged.set(1, rank=rank)

    def record_shuffle(
        self, nbytes: int, same_node: bool, same_group: bool = True
    ) -> None:
        """Account one shuffle message."""
        path = "intra_node" if same_node else "inter_node"
        self._c_shuffle.inc(nbytes, path=path)
        self._h_shuffle_msg.observe(nbytes, path=path)
        if not same_group:
            self._c_shuffle.inc(nbytes, path="inter_group")

    def record_rounds(self, rounds: int) -> None:
        """Add an aggregator's executed round count."""
        self._c_rounds.inc(rounds)

    def record_bytes(self, nbytes: int) -> None:
        """Add bytes moved to/from the file system."""
        self._c_io_bytes.inc(nbytes)

    def set_tier(self, tier: Optional[str]) -> None:
        """Record the degradation tier that served the collective."""
        self.degraded_tier = tier

    def record_failover(self, count: int = 1) -> None:
        """Count aggregator failovers performed during the run."""
        self._c_failovers.inc(count)

    def record_plan_cache(
        self, cached: bool, cache_stats=None, tree_queries: int = 0
    ) -> None:
        """Record how planning was served (cache hit vs fresh pipeline)."""
        self.plan_cached = cached
        self.planning_tree_queries = int(tree_queries)
        if cache_stats is not None:
            self.plan_cache_hits = cache_stats.hits
            self.plan_cache_misses = cache_stats.misses
            self.plan_cache_invalidations = cache_stats.invalidations

    def record_lease(self, event: str) -> None:
        """Count one lease lifecycle event (granted/renewed/...)."""
        self._c_leases.inc(1, event=event)

    def record_borrow_bytes(self, nbytes: int) -> None:
        """Add bytes moved to/from a leased remote buffer."""
        self._c_borrow_bytes.inc(nbytes)

    def record_borrow_fallback(self) -> None:
        """Count one mid-collective borrow abort (degrade to remerge)."""
        self._c_borrow_fallbacks.inc(1)

    def record_ina_fallback(self) -> None:
        """Count one leader bundle degraded to per-rank sends."""
        self._c_ina_fallbacks.inc(1)

    def record_execution_mode(self, mode: str) -> None:
        """Record which execution path served this collective."""
        self.execution_mode = mode

    def record_vectorized_refusal(self, reason: str) -> None:
        """Count a refused vectorization and keep the why in ``extra``."""
        self._c_vec_refusals.inc(1)
        self.extra["vectorized_refusal"] = reason

    def record_sharding_refusal(self, reason: str) -> None:
        """Count a refused group sharding and keep the why in ``extra``."""
        self._c_shard_refusals.inc(1)
        self.extra["sharding_refusal"] = reason

    def record_attempts(self, n: int) -> None:
        """Bulk form of :meth:`record_attempt` for node-level execution.

        The vectorized driver enters one execution attempt on behalf of
        all ``n`` ranks at once; the auditor's per-``n_ranks`` snapshot
        arithmetic must see the same call count as the per-rank path.
        """
        if self.auditor is None:
            return
        for _ in range(n):
            self.auditor.on_attempt(self)

    def record_shuffle_bulk(
        self, nbytes: int, same_node: bool, same_group: bool = True
    ) -> None:
        """Account a whole node-group's shuffle traffic in one call.

        Byte counters match a message-by-message accounting exactly; the
        per-message size histogram sees one aggregate observation (it is
        not part of :class:`CollectiveStats`).
        """
        path = "intra_node" if same_node else "inter_node"
        self._c_shuffle.inc(nbytes, path=path)
        self._h_shuffle_msg.observe(nbytes, path=path)
        if not same_group:
            self._c_shuffle.inc(nbytes, path="inter_group")

    def failed_nodes_snapshot(self, key, cluster) -> frozenset:
        """Failed-node set pinned by the first caller for `key`.

        All ranks of one (op, round) share the snapshot the earliest
        arriver took, so the degradation decision is identical across
        ranks even if the fault injector flips a node between two ranks'
        turns at the same sim instant.
        """
        snap = self._round_failed.get(key)
        if snap is None:
            snap = self._round_failed[key] = frozenset(
                node.node_id for node in cluster.nodes if node.failed
            )
        return snap

    def record_attempt(self) -> None:
        """Notify the auditor a rank entered an execution attempt."""
        if self.auditor is not None:
            self.auditor.on_attempt(self)

    def record_io_extent(self, offset: int, length: int) -> None:
        """Report one file-system extent touched (auditor bookkeeping)."""
        if self.auditor is not None:
            self.auditor.on_io_extent(self, offset, length)

    def attach_pfs(self, pfs) -> None:
        """Snapshot the file system's retry counters at operation start.

        :meth:`finalize` reports the *delta* accumulated while this
        operation ran.  Concurrent operations on the same file system
        each see the union of retries in their window.
        """
        if self._pfs is None:
            self._pfs = pfs
            self._pfs_retries0 = pfs.io_retries
            self._pfs_abandons0 = pfs.io_abandons

    # ------------------------------------------------------------------
    def finalize(self) -> CollectiveStats:
        """Fold into an immutable summary."""
        if self.start_time is None or self.end_time is None:
            raise RuntimeError("run was never marked started/ended")
        final = CollectiveStats(
            strategy=self.strategy,
            op=self.op,
            total_bytes=self.total_bytes,
            elapsed=self.end_time - self.start_time,
            n_ranks=self.n_ranks,
            n_aggregators=len(self.agg_buffer_bytes),
            aggregator_ranks=tuple(sorted(self.agg_buffer_bytes)),
            agg_buffer_bytes=dict(self.agg_buffer_bytes),
            agg_overcommit_bytes=dict(self.agg_overcommit_bytes),
            paged_aggregators=len(self.paged_aggregators),
            rounds_total=self.rounds_total,
            shuffle_intra_node_bytes=self.shuffle_intra_node_bytes,
            shuffle_inter_node_bytes=self.shuffle_inter_node_bytes,
            shuffle_inter_group_bytes=self.shuffle_inter_group_bytes,
            n_groups=self.n_groups,
            extra=dict(self.extra),
            degraded_tier=self.degraded_tier,
            io_retries=(
                self._pfs.io_retries - self._pfs_retries0 if self._pfs else 0
            ),
            io_abandons=(
                self._pfs.io_abandons - self._pfs_abandons0 if self._pfs else 0
            ),
            failovers=self.failovers,
            plan_cached=self.plan_cached,
            plan_cache_hits=self.plan_cache_hits,
            plan_cache_misses=self.plan_cache_misses,
            plan_cache_invalidations=self.plan_cache_invalidations,
            planning_tree_queries=self.planning_tree_queries,
            leases_granted=self.leases_granted,
            leases_renewed=self.leases_renewed,
            leases_revoked=self.leases_revoked,
            leases_expired=self.leases_expired,
            borrow_bytes=self.borrow_bytes,
            borrow_fallbacks=self.borrow_fallbacks,
            ina_fallbacks=self.ina_fallbacks,
            execution_mode=self.execution_mode,
            vectorized_refusals=self.vectorized_refusals,
            sharding_refusals=self.sharding_refusals,
        )
        if self.auditor is not None:
            self.auditor.on_finalize(self, final)
        return final
