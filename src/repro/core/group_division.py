"""Aggregation Group Division (paper §3.1, Figure 4).

MCIO first divides the I/O workload into disjoint aggregation groups;
each group later performs its own aggregation, restricting shuffle
traffic within the group.

Two detection paths, as in the paper:

* **Serial / explicit-offset distributions** ("a large number of
  applications use explicit offset operations ... or the data segments
  are serially distributed among processes"): walk ranks in file order,
  accumulate until the optimal group message size ``Msg_group`` is
  reached, then cut — but only at a *clean* boundary: no rank's data may
  straddle the cut, and the cut is extended "to the ending offset of the
  data accessed by the last process in [the] compute node", so processes
  of one physical node never become aggregators for different groups
  (Figure 4).
* **Interleaved / complex datatypes** ("the beginning and ending offsets
  are interwoven with each other"): the serial walk degenerates to one
  giant group, so the division falls back to analysing the file view:
  the aggregate region is cut into fixed ``Msg_group``-sized chunks
  (stripe-aligned), and each group holds the ranks with data inside its
  chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.pattern_array import PatternArray
from repro.core.request import AccessPattern, Extent

__all__ = ["AggregationGroup", "divide_groups"]

DivisionMode = Literal["auto", "serial", "interleaved"]


@dataclass(frozen=True)
class AggregationGroup:
    """One disjoint aggregation group.

    Attributes
    ----------
    group_id:
        Sequential id in file order.
    region:
        The contiguous file region this group aggregates.
    ranks:
        Ranks with at least one requested byte inside the region.
    """

    group_id: int
    region: Extent
    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.region.empty:
            raise ValueError("group region cannot be empty")
        if not self.ranks:
            raise ValueError("group must contain at least one rank")


def _members(
    patterns: Sequence[AccessPattern], region: Extent
) -> tuple[int, ...]:
    lo, hi = region.offset, region.end
    if isinstance(patterns, PatternArray):
        return tuple(patterns.senders_in(lo, hi).tolist())
    return tuple(
        r
        for r, p in enumerate(patterns)
        # bounding-interval pre-check before the per-segment walk
        if not p.empty and p.start < hi and p.end > lo
        and p.bytes_in(lo, hi) > 0
    )


def _serial_walk(
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
    msg_group: int,
    lo: int,
    hi: int,
) -> list[Extent]:
    """Offset-ordered accumulation with node-boundary extension."""
    if isinstance(patterns, PatternArray):
        # vectorized sort, then plain-python lists for the linear walk
        # (numpy scalar indexing in a hot loop is slower than list access)
        active = np.flatnonzero(patterns.lengths > 0)
        order_arr = active[
            np.lexsort(
                (active, patterns.ends[active], patterns.starts[active])
            )
        ]
        order = order_arr.tolist()
        starts = patterns.starts[order_arr].tolist()
        ends = patterns.ends[order_arr].tolist()
        sizes = patterns.lengths[order_arr].tolist()
    else:
        order = sorted(
            (r for r, p in enumerate(patterns) if not p.empty),
            key=lambda r: (patterns[r].start, patterns[r].end, r),
        )
        starts = [patterns[r].start for r in order]
        ends = [patterns[r].end for r in order]
        sizes = [patterns[r].nbytes for r in order]
    regions: list[Extent] = []
    region_start = lo
    acc_bytes = 0
    reach = lo  # furthest end among ranks added to the open group
    group_nodes: set[int] = set()
    last = len(order) - 1
    for i, rank in enumerate(order):
        acc_bytes += sizes[i]
        if ends[i] > reach:
            reach = ends[i]
        group_nodes.add(placement[rank])
        if i == last:
            break
        clean = starts[i + 1] >= reach
        big_enough = acc_bytes >= msg_group
        node_boundary = placement[order[i + 1]] not in group_nodes
        if big_enough and clean and node_boundary:
            regions.append(Extent(region_start, reach - region_start))
            region_start = reach
            acc_bytes = 0
            group_nodes = set()
    regions.append(Extent(region_start, hi - region_start))
    return regions


def _interleaved_chunks(
    msg_group: int, stripe_size: int, lo: int, hi: int
) -> list[Extent]:
    """Fixed-size, stripe-aligned chunking of the aggregate region."""
    chunk = max(msg_group, stripe_size, 1)
    if stripe_size > 1:
        chunk = -(-chunk // stripe_size) * stripe_size
    out: list[Extent] = []
    pos = lo
    while pos < hi:
        end = min(pos + chunk, hi)
        out.append(Extent(pos, end - pos))
        pos = end
    return out


def _intervals_interleave(patterns: Sequence[AccessPattern]) -> bool:
    """True if any two ranks' bounding intervals overlap."""
    if isinstance(patterns, PatternArray):
        active = patterns.lengths > 0
        starts = patterns.starts[active]
        ends = patterns.ends[active]
        order = np.lexsort((ends, starts))
        starts, ends = starts[order], ends[order]
        return bool((starts[1:] < ends[:-1]).any())
    intervals = sorted(
        (p.start, p.end) for p in patterns if not p.empty
    )
    for (_, prev_end), (nxt_start, _) in zip(intervals, intervals[1:]):
        if nxt_start < prev_end:
            return True
    return False


def divide_groups(
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
    msg_group: int,
    stripe_size: int = 0,
    mode: DivisionMode = "auto",
) -> list[AggregationGroup]:
    """Divide the collective workload into disjoint aggregation groups.

    Parameters
    ----------
    patterns:
        ``patterns[rank]`` = the rank's file view (empty patterns allowed).
    placement:
        ``placement[rank]`` = node id.
    msg_group:
        Target bytes per group (``Msg_group``).
    stripe_size:
        Stripe unit for chunk alignment in the interleaved path.
    mode:
        ``"serial"`` / ``"interleaved"`` force a path; ``"auto"`` (default)
        tries the serial walk and falls back to interleaved chunking when
        interleaving collapses the walk into one oversized group.

    Returns
    -------
    list of AggregationGroup
        Regions are disjoint, tile the aggregate file region exactly, and
        every rank with data belongs to at least one group.
    """
    if len(patterns) != len(placement):
        raise ValueError("patterns and placement length mismatch")
    if msg_group < 1:
        raise ValueError("msg_group must be >= 1")
    if isinstance(patterns, PatternArray):
        if not patterns.any_active:
            return []
        n_active = int((patterns.lengths > 0).sum())
        lo, hi = patterns.bounds()
    else:
        active = [p for p in patterns if not p.empty]
        if not active:
            return []
        n_active = len(active)
        lo = min(p.start for p in active)
        hi = max(p.end for p in active)

    if mode == "interleaved":
        regions = _interleaved_chunks(msg_group, stripe_size, lo, hi)
    else:
        regions = _serial_walk(patterns, placement, msg_group, lo, hi)
        # The serial walk collapses when rank intervals interleave (no
        # clean cut ever appears).  Only then fall back to file-view
        # chunking — a serial distribution that happens to fit one group
        # (small data, or a single node) must stay one group.
        degenerate = (
            mode == "auto"
            and len(regions) == 1
            and n_active > 1
            and (hi - lo) > 2 * msg_group
            and _intervals_interleave(patterns)
        )
        if degenerate:
            regions = _interleaved_chunks(msg_group, stripe_size, lo, hi)

    groups: list[AggregationGroup] = []
    for region in regions:
        ranks = _members(patterns, region)
        if not ranks:
            # empty slice of the file (gap between rank data): fold it
            # into the previous group's region so regions still tile
            if groups:
                prev = groups[-1]
                merged = Extent(
                    prev.region.offset, region.end - prev.region.offset
                )
                groups[-1] = AggregationGroup(prev.group_id, merged, prev.ranks)
            continue
        groups.append(AggregationGroup(len(groups), region, ranks))
    return groups
