"""Aggregators Location (paper §3.3): memory-aware aggregator placement.

For each file domain produced by the partition tree, the placer:

1. collects the *candidate hosts* — nodes of the processes whose I/O
   requests fall inside the domain, excluding hosts already running
   ``N_ah`` aggregators;
2. picks the candidate host with maximum available memory ``Mem_avl``
   (net of what earlier placements already reserved);
3. if that host can supply the aggregation buffer (and the tuned floor
   ``Mem_min``), selects one of its processes as the domain's aggregator
   and reserves the memory;
4. otherwise the domain "will be integrated with the domain nearby" —
   the partition-tree remerge — and the search repeats "until the one
   that satisfies the memory requirement is identified".

Remerging changes earlier domains' extents, so after every remerge the
whole assignment pass restarts from scratch; each remerge removes one
leaf, so the loop terminates after at most the initial leaf count passes.

If even a single merged domain cannot be satisfied, the placer either
falls back to the best available host (allocation marked *paged*) or
raises, per ``allow_paged_fallback``.

``placement_policy`` widens step 4: under ``"borrow"``/``"hybrid"`` a
leaf that would remerge may instead keep its aggregator on the best
candidate host while *leasing* the aggregation buffer from the
memory-richest other node (any node, candidate or not — lending does
not consume an ``N_ah`` slot).  The domain is tagged with
``lender_node``; the actual lease is acquired at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.config import MCIOConfig
from repro.core.filedomain import FileDomain
from repro.core.partition_tree import PartitionTree
from repro.core.pattern_array import PatternArray
from repro.core.request import AccessPattern, Extent

__all__ = ["PlacementError", "place_aggregators", "candidate_hosts"]


class PlacementError(RuntimeError):
    """No host can satisfy a domain's memory requirement.

    Attributes
    ----------
    group_id:
        The aggregation group whose assignment failed (None if unknown).
    domain:
        The offending domain's extent (None if the whole pass failed).
    best_mem_avl:
        Largest remaining ``Mem_avl`` among the candidate hosts, bytes
        (None when there were no candidates at all).
    """

    def __init__(
        self,
        message: str,
        group_id: Optional[int] = None,
        domain: Optional[Extent] = None,
        best_mem_avl: Optional[int] = None,
    ):
        super().__init__(message)
        self.group_id = group_id
        self.domain = domain
        self.best_mem_avl = best_mem_avl


def candidate_hosts(
    domain: Extent,
    ranks: Sequence[int],
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
) -> dict[int, list[int]]:
    """Hosts of the processes with data inside `domain`.

    Returns
    -------
    dict
        ``host node id -> ranks of that host with data in the domain``
        (rank-ordered).
    """
    lo, hi = domain.offset, domain.end
    hosts: dict[int, list[int]] = {}
    if isinstance(patterns, PatternArray):
        # vectorized membership test, then intersect with the group's
        # ranks (ascending both ways, so rank order is preserved); a
        # group spanning every rank needs no intersection at all
        inside = patterns.senders_in(lo, hi)
        if len(ranks) == len(patterns):
            members = inside
        else:
            members = np.intersect1d(
                inside, np.asarray(ranks, dtype=np.int64), assume_unique=True
            )
        for r in members.tolist():
            hosts.setdefault(placement[r], []).append(r)
        return hosts
    for r in ranks:
        p = patterns[r]
        if p.empty or p.start >= hi or p.end <= lo:
            continue
        if p.bytes_in(lo, hi) > 0:
            hosts.setdefault(placement[r], []).append(r)
    return hosts


@dataclass
class _HostState:
    available: int
    reserved: int = 0
    aggregators: int = 0

    @property
    def remaining(self) -> int:
        return self.available - self.reserved


def place_aggregators(
    tree: PartitionTree,
    group_id: int,
    ranks: Sequence[int],
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
    memory_available: Mapping[int, int],
    config: MCIOConfig,
    host_state: Optional[dict[int, "_HostState"]] = None,
) -> list[FileDomain]:
    """Assign an aggregator to every leaf of `tree`, remerging as needed.

    Parameters
    ----------
    tree:
        The group's partition tree (mutated by remerges).
    group_id:
        Aggregation group id recorded on the produced domains.
    ranks:
        The group's member ranks.
    patterns:
        All ranks' file views (indexed by world rank).
    placement:
        ``placement[rank]`` = node id.
    memory_available:
        Available memory per node id (the allgathered ``Mem_avl``).
    config:
        MCIO parameters (``nah``, ``mem_min``, ``cb_buffer_size``,
        ``allow_paged_fallback``).
    host_state:
        Cross-group reservation/aggregator-count state.  Groups execute
        concurrently, so memory reservations and the ``N_ah`` cap must be
        shared: pass the same dict for every group of one collective.
        On success this group's placements are committed into it.

    Returns
    -------
    list of FileDomain
        One per surviving leaf, in file order.
    """
    if host_state is None:
        host_state = {}
    for node, avail in memory_available.items():
        host_state.setdefault(node, _HostState(available=int(avail)))
    # Remerging restarts the whole pass, and most leaves survive a
    # remerge with their extents untouched — so candidate-host sets and
    # per-host local byte counts are memoised by extent across passes.
    # A remerge only *creates* extents (the absorber's grows), so stale
    # keys are simply never queried again.
    cand_cache: dict[tuple[int, int], dict[int, list[int]]] = {}
    local_cache: dict[tuple[int, int, int], int] = {}
    max_passes = tree.n_leaves + 1
    for _ in range(max_passes):
        result = _try_assign(
            tree, group_id, ranks, patterns, placement, host_state, config,
            cand_cache, local_cache,
        )
        if result is not None:
            domains, tentative = result
            # commit this group's reservations into the shared state
            for node, state in tentative.items():
                host_state[node] = state
            return domains
    raise PlacementError(
        f"group {group_id}: assignment did not converge "
        f"after {max_passes} passes over {tree.n_leaves} leaves",
        group_id=group_id,
    )  # pragma: no cover - loop is bounded by leaf count


def _buffer_for(domain: Extent, state: "_HostState", config: MCIOConfig) -> int:
    """Aggregation-buffer size on a satisfying host.

    Memory-conscious sizing cuts both ways:

    * a host with plenty of memory gets a buffer *larger* than the nominal
      ``cb_buffer_size`` (fewer rounds), capped at the domain size, at the
      host's fair share ``available / N_ah`` (so the host can still take
      its other aggregators), and at what actually remains;
    * a host that cannot fit the nominal buffer is handled by the
      adaptive/remerge paths in :func:`_try_assign`.
    """
    nominal = min(config.cb_buffer_size, domain.length)
    generous = state.available // config.nah
    return max(1, min(domain.length, max(nominal, generous), state.remaining))


def _find_lender(
    domain: Extent,
    open_hosts: Mapping[int, Sequence[int]],
    hosts: Mapping[int, "_HostState"],
    nominal: int,
    requirement: int,
    config: MCIOConfig,
):
    """Borrow placement for a leaf none of whose hosts can buffer it.

    The aggregator runs on the open candidate host with the most
    remaining memory (it still does the CPU work and the PFS I/O); the
    nominal buffer is reserved on the memory-richest *other* node that
    can cover ``requirement + lend_headroom``.  Returns
    ``(agg_host, lender_node, buffer)`` or None when no lender
    qualifies; the lender reservation is recorded in `hosts`.
    """
    agg_host = max(open_hosts, key=lambda node: (hosts[node].remaining, -node))
    need = requirement + config.lend_headroom
    lenders = [
        node
        for node, state in hosts.items()
        if node != agg_host and state.remaining >= need
    ]
    if not lenders:
        return None
    lender = max(lenders, key=lambda node: (hosts[node].remaining, -node))
    buffer = nominal
    hosts[lender].reserved += buffer
    return agg_host, lender, buffer


def _try_assign(
    tree: PartitionTree,
    group_id: int,
    ranks: Sequence[int],
    patterns: Sequence[AccessPattern],
    placement: Sequence[int],
    base_state: Mapping[int, "_HostState"],
    config: MCIOConfig,
    cand_cache: dict[tuple[int, int], dict[int, list[int]]],
    local_cache: dict[tuple[int, int, int], int],
):
    """One assignment pass over a copy of `base_state`.

    Returns ``(domains, tentative_state)`` on success, or None if a
    remerge happened (the caller restarts the pass).  `cand_cache` and
    `local_cache` memoise candidate hosts / per-host local bytes by
    domain extent across restarted passes.
    """
    hosts: dict[int, _HostState] = {
        node: _HostState(
            available=state.available,
            reserved=state.reserved,
            aggregators=state.aggregators,
        )
        for node, state in base_state.items()
    }
    domains: list[FileDomain] = []
    for leaf in tree.leaves():
        domain = leaf.extent
        nominal = max(1, min(config.cb_buffer_size, domain.length))
        requirement = max(config.mem_min, nominal)
        cand_key = (domain.offset, domain.end)
        candidates = cand_cache.get(cand_key)
        if candidates is None:
            candidates = cand_cache[cand_key] = candidate_hosts(
                domain, ranks, patterns, placement
            )
        if not candidates:
            # a domain with no requesting process can appear when the
            # region contains request gaps; fold it into a neighbour
            if tree.n_leaves > 1:
                tree.remerge(leaf)
                return None
            candidates = {placement[ranks[0]]: [ranks[0]]}

        open_hosts = {
            node: members
            for node, members in candidates.items()
            if hosts[node].aggregators < config.nah
        }
        satisfied = {
            node: members
            for node, members in open_hosts.items()
            if hosts[node].remaining >= requirement
        }

        paged = False
        lender_node = None
        if satisfied:
            # every satisfied host has enough memory, so pick the one
            # owning the most of the domain's data — keeping the shuffle
            # on the intra-node path (the abstract's "coordinates I/O
            # accesses in intra-node and inter-node layer"); memory is the
            # tie-break
            def _local_bytes(node: int) -> int:
                key = (domain.offset, domain.end, node)
                total = local_cache.get(key)
                if total is None:
                    if isinstance(patterns, PatternArray):
                        total = patterns.sum_bytes_in(
                            domain.offset, domain.end, candidates[node]
                        )
                    else:
                        total = sum(
                            patterns[r].bytes_in(domain.offset, domain.end)
                            for r in candidates[node]
                        )
                    local_cache[key] = total
                return total

            pool = satisfied
            best = max(
                pool,
                key=lambda node: (_local_bytes(node), hosts[node].remaining, -node),
            )
            buffer = _buffer_for(domain, hosts[best], config)
        else:
            # no host can take the full nominal buffer; prefer a modestly
            # shrunken buffer over relocating work away (a buffer below
            # half-nominal doubles the round count — past that, paging or
            # remerging is cheaper)
            adaptive_floor = max(config.min_buffer, config.mem_min, nominal // 2, 1)
            adaptive = {
                node: members
                for node, members in open_hosts.items()
                if hosts[node].remaining >= adaptive_floor
            }
            borrowed = None
            if (
                not (config.adaptive_buffer and adaptive)
                and config.placement_policy != "remerge"
                and open_hosts
            ):
                borrowed = _find_lender(
                    domain, open_hosts, hosts, nominal, requirement, config
                )
            if config.adaptive_buffer and adaptive:
                pool = adaptive
                best = max(pool, key=lambda node: (hosts[node].remaining, -node))
                # shrink the buffer to what the host has: with a swap-like
                # paging penalty, extra rounds are cheaper than thrash
                buffer = max(1, min(domain.length, int(hosts[best].remaining)))
            elif borrowed is not None:
                # lease the buffer remotely instead of shrinking the
                # domain's parallelism away
                best, lender_node, buffer = borrowed
                pool = open_hosts
            elif config.placement_policy != "borrow" and tree.n_leaves > 1:
                # "Otherwise ... the file domain will be integrated with
                # the domain nearby" — remerge expands the search area
                # (pure-borrow mode refuses to shrink parallelism and
                # degrades to the paged/error path instead)
                tree.remerge(leaf)
                return None
            elif config.allow_paged_fallback:
                pool = open_hosts if open_hosts else candidates
                best = max(pool, key=lambda node: (hosts[node].remaining, -node))
                adaptive_floor = max(config.min_buffer, config.mem_min, nominal // 2, 1)
                if hosts[best].remaining >= requirement:
                    # N_ah is exhausted but the host's memory is not:
                    # oversubscribe the host rather than page
                    buffer = _buffer_for(domain, hosts[best], config)
                elif config.adaptive_buffer and hosts[best].remaining >= adaptive_floor:
                    buffer = max(1, min(domain.length, int(hosts[best].remaining)))
                else:
                    buffer = nominal
                    paged = True
            else:
                best_avl = max(
                    (hosts[node].remaining for node in candidates), default=None
                )
                raise PlacementError(
                    f"group {group_id}: no host satisfies {requirement} B "
                    f"for domain [{domain.offset}, {domain.end}) "
                    f"({domain.length} B, {len(candidates)} candidate "
                    f"host(s), best Mem_avl {best_avl} B)",
                    group_id=group_id,
                    domain=domain,
                    best_mem_avl=best_avl,
                )

        state = hosts[best]
        # round-robin over the host's member ranks so N_ah aggregators on
        # one node are distinct processes
        members = pool[best]
        agg_rank = members[state.aggregators % len(members)]
        state.aggregators += 1
        if lender_node is None:
            state.reserved += buffer
        # (borrowed buffers were reserved on the lender in _find_lender)
        domains.append(
            FileDomain(
                extent=domain,
                aggregator_rank=agg_rank,
                buffer_bytes=buffer,
                paged=paged,
                group_id=group_id,
                lender_node=lender_node,
            )
        )
    return domains, hosts
