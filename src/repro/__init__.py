"""repro — Memory-Conscious Collective I/O for extreme-scale HPC systems.

A from-scratch reproduction of Lu, Chen, Zhuang & Thakur's
*Memory-Conscious Collective I/O* (SC '12 poster / ROSS '13), including
every substrate the paper runs on: a deterministic discrete-event cluster
simulator, an MPI-like runtime, and a Lustre-like striped parallel file
system.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quick start
-----------
>>> from repro import (
...     Cluster, ClusterSpec, SimComm, ParallelFileSystem, SparseFile,
...     Environment, RngFactory, block_placement,
...     TwoPhaseCollectiveIO, MemoryConsciousCollectiveIO,
... )
>>> # build a platform, launch SPMD rank processes, run collectives —
>>> # see examples/quickstart.py for the full walkthrough

Package map
-----------
``repro.sim``
    Discrete-event kernel (environment, processes, resources, RNG).
``repro.cluster``
    Nodes, memory model, interconnect, placement, hardware presets.
``repro.mpi``
    Simulated communicator and MPI-datatype file views.
``repro.pfs``
    Striped parallel file system with optional byte-accurate store.
``repro.faults``
    Seeded fault schedules and the injector driving them.
``repro.core``
    The collective-I/O strategies and their planning components.
``repro.workloads``
    coll_perf, IOR, and synthetic access-pattern generators.
``repro.experiments``
    Table 1 / Figures 6-8 reproductions, memory-pressure and ablation
    studies.
"""

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    StorageSpec,
    block_placement,
    exascale_2018,
    petascale_2010,
    ross13_testbed,
    round_robin_placement,
)
from repro.core import (
    AccessPattern,
    CollectiveStats,
    DataSievingIO,
    Extent,
    IndependentIO,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    StridedSegment,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.mpi import (
    RankContext,
    SimComm,
    SimFile,
    block_decompose_3d,
    contiguous_view,
    hindexed_view,
    subarray_view_3d,
    vector_view,
)
from repro.pfs import ParallelFileSystem, RetryPolicy, SparseFile
from repro.sim import Environment, RngFactory
from repro.workloads import (
    CollPerfWorkload,
    IORWorkload,
    SkewedWorkload,
    SmallRequestWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "Cluster",
    "ClusterSpec",
    "CollPerfWorkload",
    "CollectiveStats",
    "DataSievingIO",
    "Environment",
    "Extent",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "IORWorkload",
    "IndependentIO",
    "MCIOConfig",
    "MemoryConsciousCollectiveIO",
    "NodeSpec",
    "ParallelFileSystem",
    "RankContext",
    "RetryPolicy",
    "RngFactory",
    "SimComm",
    "SimFile",
    "SkewedWorkload",
    "SmallRequestWorkload",
    "SparseFile",
    "StorageSpec",
    "StridedSegment",
    "TwoPhaseCollectiveIO",
    "TwoPhaseConfig",
    "__version__",
    "block_decompose_3d",
    "block_placement",
    "contiguous_view",
    "exascale_2018",
    "hindexed_view",
    "petascale_2010",
    "ross13_testbed",
    "round_robin_placement",
    "subarray_view_3d",
    "vector_view",
]
