"""Process-pool plumbing shared by sharded collectives and sweep cells.

Two primitives live here:

* :class:`ParallelRunner` — a thin, order-preserving ``map`` over a lazy
  :class:`concurrent.futures.ProcessPoolExecutor`.  ``jobs <= 1`` runs
  the callable in-process (no pickling constraints, tracers allowed),
  which keeps a single code path for serial and parallel callers; with
  ``jobs > 1`` the callable must be module-level and every item and
  result picklable.
* :func:`cell_seed` — deterministic per-cell RNG seeds derived from the
  *cell signature*, never from worker identity or submission order, so a
  sweep's results are identical whether it runs serially, with 2
  workers, or with 32 (DESIGN.md §12's determinism contract).

The pool is created on first parallel use and reused across ``map``
calls, so repeated small fan-outs (e.g. hypothesis examples) amortise
worker start-up; ``close()`` (or the context manager) tears it down.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["ParallelRunner", "cell_seed", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` = auto (all cores)."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = auto)")
    return jobs


def cell_seed(base_seed: int, *signature) -> int:
    """A stable RNG seed for one sweep cell.

    Hashes ``(base_seed, *signature)`` — the cell's own coordinates
    (rank count, fault rate, strategy name, ...) — through SHA-256, so
    the seed depends only on *what* the cell is, not on which worker
    runs it or when.  Signature parts must have stable ``repr``s (ints,
    floats, strings, tuples thereof).
    """
    text = repr((int(base_seed),) + signature)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


class ParallelRunner:
    """Order-preserving map over a reusable process pool.

    Parameters
    ----------
    jobs:
        Worker count; ``None``/``0`` = auto (one per core), ``1`` =
        serial in-process execution (the default for library callers —
        parallelism is opt-in via ``--jobs``).
    """

    def __init__(self, jobs: Optional[int] = 1):
        self.jobs = resolve_jobs(jobs)
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def parallel(self) -> bool:
        """Whether ``map`` fans out to worker processes."""
        return self.jobs > 1

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply `fn` to every item, results in item order.

        Serial mode calls `fn` inline.  Parallel mode submits every item
        up front (the pool schedules ``jobs`` at a time) and gathers in
        submission order; a worker exception propagates to the caller
        with the remaining futures cancelled best-effort.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent); serial runners are no-ops."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
