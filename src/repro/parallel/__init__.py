"""Process-parallel execution of independent simulation work.

Two shard axes (DESIGN.md §12):

* **Group sharding** — :func:`run_sharded_collective` partitions a
  plan's independent aggregation groups across worker processes and
  merges stats/traces deterministically.
* **Cell sharding** — :class:`ParallelRunner` fans independent sweep
  cells (experiment grid points) out across workers; :func:`cell_seed`
  keeps per-cell RNG seeds a function of the cell, not the worker.
"""

from repro.parallel.groups import run_sharded_collective, sharding_refusal
from repro.parallel.pool import ParallelRunner, cell_seed, resolve_jobs

__all__ = [
    "ParallelRunner",
    "cell_seed",
    "resolve_jobs",
    "run_sharded_collective",
    "sharding_refusal",
]
