"""Group-sharded process-parallel collective execution (DESIGN.md §12).

The paper's aggregation-group invariant — shuffle traffic never crosses
a group boundary — makes groups embarrassingly parallel: no message, no
I/O extent, and no aggregation buffer is shared between two groups of
one plan.  This driver exploits that: it plans once in the parent,
partitions whole groups across worker processes
(:meth:`~repro.core.engine.ExecutionPlan.partition_groups`), replays
each partition through the unmodified per-rank reference engine on a
fresh sub-Environment, and merges the results deterministically:

* per-shard :class:`~repro.core.metrics.CollectiveStats` fold through
  :meth:`CollectiveStats.merge` (counters sum, gauges max per rank,
  sim-time maxes) and replay into the parent's collector, so the
  attached :class:`~repro.core.audit.ConservationAuditor` sees one
  coherent operation (one attempt per rank, every I/O extent, the full
  shuffle total);
* worker trace timelines ship home as event dicts and concatenate onto
  the parent tracer via :meth:`~repro.obs.Tracer.absorb` — the same
  install-offset contract sweeps already use.

Equivalence contract
--------------------
For any plan this driver accepts, the merged stats equal the per-rank
reference on every deterministic accounting field (the same field set
the vectorized driver pins, ``tests/helpers.EQUIVALENT_FIELDS``).  The
guarantee leans on two structural facts: window sender sets are
computed from the *full* pattern list inside every worker (each worker
runs the whole communicator, with only its shard's domains), and the
``shared-aggregator-host`` refusal below keeps every node's
aggregation-buffer commitment sequence identical to the unsharded run,
so paging and overcommit decisions cannot diverge.  ``elapsed`` is the
max over shards — the collective is as slow as its slowest group chain,
an approximation pinned separately from the per-rank goldens.

Refusals
--------
Like vectorization, sharding *refuses* rather than approximates.  The
per-rank fallback runs instead and the refusal is counted in
``CollectiveStats.sharding_refusals`` with the reason in
``extra["sharding_refusal"]``:

* ``"data-plane"`` — payload bytes must really move (workers cannot
  share a datastore);
* ``"fault-schedule"`` / ``"failed-nodes"`` — degraded-mode timing is
  cross-group (failovers steal hosts from other groups);
* ``"active-leases"`` / ``"lender-domains"`` — the borrow protocol is
  cluster-global control flow;
* ``"independent-tier"`` — the plan degraded to uncoordinated I/O;
* ``"single-group"`` — nothing to shard;
* ``"shared-aggregator-host"`` — a node hosts aggregation buffers of
  more than one group, so its memory-commitment sequence (paging,
  overcommit) would depend on the partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.engine import ExecutionPlan, execute_collective
from repro.core.filedomain import FileDomain
from repro.core.metrics import CollectiveStats, StatsCollector
from repro.core.request import AccessPattern
from repro.core.vectorized import vectorization_refusal
from repro.parallel.pool import ParallelRunner, resolve_jobs

__all__ = ["run_sharded_collective", "sharding_refusal"]

#: Worker-side trace ring capacity; shard timelines are short-lived
#: (one collective) so this never realistically drops events.
_WORKER_TRACE_CAPACITY = 1 << 16


def sharding_refusal(engine, payloads=None) -> Optional[str]:
    """Why this collective cannot shard right now, or None.

    Pre-plan checks only; the post-plan checks (independent tier, lender
    domains, single group, shared aggregator hosts) live in
    :func:`run_sharded_collective` because they need the plan.  The
    fault/lease/data-plane conditions are exactly vectorization's — both
    drivers require the fault-free, lease-free, metadata-only regime.
    """
    return vectorization_refusal(engine, payloads)


@dataclass(frozen=True)
class _ShardSpec:
    """Everything one worker needs to replay its partition, picklable.

    Live simulation objects (Environment, Cluster, Tracer — whose clock
    is a closure) never cross the process boundary; the worker rebuilds
    the platform from specs and pinned memory state.
    """

    cluster_spec: object
    placement: tuple[int, ...]
    #: Per-node available memory at plan time, pinned so worker-side
    #: allocation/paging/overcommit decisions replay the parent's state.
    memory_available: tuple[int, ...]
    metadata_bandwidth: float
    retry: object
    strategy: str
    op: str
    op_seq: int
    granularity: str
    intra_node_aggregation: bool
    patterns: tuple[AccessPattern, ...]
    domains: tuple[FileDomain, ...]
    senders: tuple[tuple[int, ...], ...]
    n_groups: int
    want_trace: bool


class _ExtentRecorder:
    """Minimal auditor stand-in: captures the worker's I/O extents."""

    __slots__ = ("extents",)

    def __init__(self):
        self.extents: list[tuple[int, int]] = []

    def on_attempt(self, collector) -> None:
        pass

    def on_io_extent(self, collector, offset: int, length: int) -> None:
        self.extents.append((offset, length))


def _run_shard(spec: _ShardSpec) -> dict:
    """Worker entry point: replay one partition on a fresh platform.

    Runs the *full* communicator (every rank) against only the shard's
    domains — non-participant ranks just clear the lockstep barriers,
    touching no counter — so sender sets, shuffle locality, and barrier
    structure match the unsharded run domain-for-domain.  Returns plain
    picklable data: finalized stats, the rank set that paged, the I/O
    extents touched, and (optionally) the trace timeline as dicts.
    """
    from repro.cluster import Cluster
    from repro.mpi import SimComm
    from repro.pfs import ParallelFileSystem
    from repro.sim import Environment, RngFactory

    env = Environment()
    tracer = None
    if spec.want_trace:
        from repro.obs import Tracer

        tracer = Tracer(capacity=_WORKER_TRACE_CAPACITY)
        tracer.install(env)
    cluster = Cluster(env, spec.cluster_spec, RngFactory(0))
    cluster.set_memory_availability(spec.memory_available)
    comm = SimComm(
        env,
        cluster,
        list(spec.placement),
        metadata_bandwidth=spec.metadata_bandwidth,
    )
    pfs = ParallelFileSystem(env, spec.cluster_spec.storage, datastore=None)
    pfs.retry = spec.retry

    plan = ExecutionPlan(spec.domains, spec.senders, n_groups=spec.n_groups)
    collector = StatsCollector(spec.strategy, spec.op, n_ranks=comm.size)
    collector.n_groups = spec.n_groups
    collector.attach_pfs(pfs)
    recorder = _ExtentRecorder()
    collector.auditor = recorder
    patterns = spec.patterns

    def main(ctx):
        yield from execute_collective(
            ctx,
            comm,
            pfs,
            plan,
            patterns,
            collector,
            spec.op,
            spec.op_seq,
            payload=None,
            granularity=spec.granularity,
            failover_config=None,
            intra_node_aggregation=spec.intra_node_aggregation,
        )

    comm.run_spmd(main)
    paged_ranks = sorted(collector.paged_aggregators)
    collector.auditor = None
    final = collector.finalize()
    events = (
        [ev.to_dict() for ev in tracer.events()] if tracer is not None else None
    )
    return {
        "stats": final,
        "paged_ranks": paged_ranks,
        "extents": recorder.extents,
        "events": events,
    }


def _per_rank_fallback(
    engine, patterns, op: str, reason: str, payloads=None
) -> CollectiveStats:
    """Run the reference per-rank path, tagging the refusal on its stats."""
    engine._pending_shard_refusal = reason

    def main(ctx):
        fn = engine.write if op == "write" else engine.read
        payload = payloads[ctx.rank] if payloads is not None else None
        return (yield from fn(ctx, patterns[ctx.rank], payload))

    engine.comm.run_spmd(main)
    return engine.history[-1]


def run_sharded_collective(
    engine,
    patterns: Sequence[AccessPattern],
    op: str,
    payloads=None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
) -> CollectiveStats:
    """Run one collective with independent groups sharded across workers.

    Parameters
    ----------
    engine:
        A :class:`~repro.core.mcio.MemoryConsciousCollectiveIO`.
    patterns:
        All ranks' file views.
    op:
        ``"write"`` or ``"read"``.
    payloads:
        Optional per-rank data buffers; real payloads force the
        per-rank fallback (refusal ``"data-plane"``).
    jobs:
        Worker process count (``None``/``0`` = one per core, ``1`` =
        run the shards serially in-process — same sharded semantics,
        no fork).  Ignored when `runner` is given.
    runner:
        A shared :class:`~repro.parallel.ParallelRunner` to reuse
        across collectives (amortises pool start-up); the caller owns
        its lifetime.

    Returns
    -------
    CollectiveStats
        The merged (or fallback) stats, also appended to
        ``engine.history``.
    """
    if op not in ("write", "read"):
        raise ValueError(f"op must be 'write' or 'read', got {op!r}")
    comm = engine.comm
    if len(patterns) != comm.size:
        raise ValueError("patterns length must equal communicator size")

    reason = sharding_refusal(engine, payloads)
    if reason is not None:
        return _per_rank_fallback(engine, patterns, op, reason, payloads)

    # plan exactly as the per-rank path's first-arriving rank would
    engine.plan_cache.tracer = comm.env.tracer
    memory_available = {
        node_id: comm.cluster.nodes[node_id].memory.free_available
        for node_id in set(comm.placement)
    }
    (plan, tier, reason_txt), cached = engine._plan_or_reuse(
        patterns, memory_available, frozenset()
    )
    if plan is None:
        return _per_rank_fallback(
            engine, patterns, op, "independent-tier", payloads
        )
    if any(d.lender_node is not None for d in plan.domains):
        return _per_rank_fallback(
            engine, patterns, op, "lender-domains", payloads
        )
    if plan.n_groups < 2:
        return _per_rank_fallback(engine, patterns, op, "single-group", payloads)
    host_groups: dict[int, set[int]] = {}
    for d in plan.domains:
        host = comm.placement[d.aggregator_rank]
        host_groups.setdefault(host, set()).add(d.group_id)
    if any(len(gids) > 1 for gids in host_groups.values()):
        return _per_rank_fallback(
            engine, patterns, op, "shared-aggregator-host", payloads
        )

    n_jobs = runner.jobs if runner is not None else resolve_jobs(jobs)
    parts = plan.partition_groups(max(1, n_jobs))

    seq = engine._advance_seq()
    stats = engine._make_collector(op, plan, tier, reason_txt, cached)
    stats.record_execution_mode("sharded")

    tracer = comm.env.tracer
    pattern_list = tuple(patterns[r] for r in range(comm.size))
    avail = tuple(node.memory.available for node in comm.cluster.nodes)
    specs = [
        _ShardSpec(
            cluster_spec=comm.cluster.spec,
            placement=tuple(comm.placement),
            memory_available=avail,
            metadata_bandwidth=comm.metadata_bandwidth,
            retry=engine.pfs.retry,
            strategy=engine.name,
            op=op,
            op_seq=seq,
            granularity=engine.config.shuffle_granularity,
            intra_node_aggregation=engine.config.intra_node_aggregation,
            patterns=pattern_list,
            domains=tuple(plan.domains[did] for did in part),
            senders=tuple(plan.senders[did] for did in part),
            n_groups=len({plan.domains[did].group_id for did in part}),
            want_trace=bool(tracer.enabled),
        )
        for part in parts
    ]

    own_runner = runner is None
    if own_runner:
        runner = ParallelRunner(jobs=n_jobs)
    try:
        results = runner.map(_run_shard, specs)
    finally:
        if own_runner:
            runner.close()

    merged = CollectiveStats.merge([r["stats"] for r in results])

    # replay the merged accounting into the parent collector so
    # finalize() — and the attached conservation auditor — see one
    # coherent operation, exactly as a single-process run would report it
    stats.mark_start(0.0)
    stats.mark_end(merged.elapsed)
    stats.record_attempts(comm.size)
    if merged.total_bytes:
        stats.record_bytes(merged.total_bytes)
    if merged.rounds_total:
        stats.record_rounds(merged.rounds_total)
    if merged.shuffle_intra_node_bytes:
        stats.record_shuffle_bulk(merged.shuffle_intra_node_bytes, same_node=True)
    if merged.shuffle_inter_node_bytes:
        stats.record_shuffle_bulk(
            merged.shuffle_inter_node_bytes, same_node=False
        )
    paged = set()
    for r in results:
        paged.update(r["paged_ranks"])
    for rank in sorted(merged.agg_buffer_bytes):
        stats.record_aggregator(
            rank,
            merged.agg_buffer_bytes[rank],
            paged=rank in paged,
            overcommit_bytes=merged.agg_overcommit_bytes.get(rank, 0),
        )
    for r in results:
        for offset, length in r["extents"]:
            stats.record_io_extent(offset, length)
    stats.n_groups = plan.n_groups
    stats.extra["finishers"] = comm.size
    stats.extra["shards"] = len(parts)

    if tracer.enabled:
        for r in results:
            if r["events"]:
                tracer.absorb(r["events"], offset=tracer.max_ts())

    final = stats.finalize()
    engine.history.append(final)
    return final
