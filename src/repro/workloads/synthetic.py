"""Synthetic small-noncontiguous workloads.

The paper's motivation: "a large number of small and noncontiguous
requests, which is a common access pattern for scientific applications".
These generators produce such patterns with controllable granularity and
skew, for the ablation benchmarks and for exercising the non-collective
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.request import AccessPattern, Extent

__all__ = ["SmallRequestWorkload", "SkewedWorkload"]


@dataclass(frozen=True)
class SmallRequestWorkload:
    """Every rank owns many small blocks strided across a shared region.

    Rank ``r`` owns block ``k`` at ``(k * P + r) * request_size`` — a
    fine-grained interleave (IOR with a tiny block size), the pattern
    where independent I/O collapses and collective I/O shines.
    """

    n_ranks: int = 16
    request_size: int = 512
    requests_per_rank: int = 64

    def __post_init__(self) -> None:
        if min(self.n_ranks, self.request_size, self.requests_per_rank) < 1:
            raise ValueError("all parameters must be >= 1")

    @property
    def total_bytes(self) -> int:
        """Bytes of the shared region."""
        return self.n_ranks * self.request_size * self.requests_per_rank

    def pattern(self, rank: int) -> AccessPattern:
        """File view of `rank`."""
        from repro.mpi.datatypes import vector_view

        return vector_view(
            offset=rank * self.request_size,
            count=self.requests_per_rank,
            block=self.request_size,
            stride=self.n_ranks * self.request_size,
        )

    def patterns(self) -> list[AccessPattern]:
        """File views of all ranks."""
        return [self.pattern(r) for r in range(self.n_ranks)]

    @property
    def description(self) -> str:
        """Human-readable label."""
        return (
            f"small-requests {self.request_size} B x {self.requests_per_rank} "
            f"on {self.n_ranks} procs"
        )


@dataclass(frozen=True)
class SkewedWorkload:
    """Serially distributed data with a skewed per-rank volume.

    Rank volumes follow a truncated geometric profile: rank 0 carries the
    most data, later ranks less, down to ``min_bytes``.  Exercises MCIO's
    data-dependent partition depth (dense regions split deeper) and
    unbalanced aggregator load in the baseline.
    """

    n_ranks: int = 16
    max_bytes: int = 1 << 16
    min_bytes: int = 1 << 8
    decay: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.min_bytes < 1 or self.max_bytes < self.min_bytes:
            raise ValueError("need 1 <= min_bytes <= max_bytes")
        if not 0 < self.decay <= 1:
            raise ValueError("decay must be in (0, 1]")

    def sizes(self) -> list[int]:
        """Per-rank byte volumes."""
        out = []
        size = float(self.max_bytes)
        for _ in range(self.n_ranks):
            out.append(int(max(self.min_bytes, size)))
            size *= self.decay
        return out

    @property
    def total_bytes(self) -> int:
        """Total bytes across ranks."""
        return sum(self.sizes())

    def patterns(self) -> list[AccessPattern]:
        """Serially packed file views, rank 0 first."""
        out = []
        offset = 0
        for size in self.sizes():
            out.append(AccessPattern.contiguous(offset, size))
            offset += size
        return out

    def pattern(self, rank: int) -> AccessPattern:
        """File view of `rank`."""
        return self.patterns()[rank]

    @property
    def description(self) -> str:
        """Human-readable label."""
        return (
            f"skewed {self.max_bytes}->{self.min_bytes} B "
            f"(decay {self.decay}) on {self.n_ranks} procs"
        )
