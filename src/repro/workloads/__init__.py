"""Benchmark workload generators: coll_perf, IOR, and synthetic patterns."""

from .coll_perf import CollPerfWorkload
from .ior import IORWorkload
from .synthetic import SkewedWorkload, SmallRequestWorkload

__all__ = [
    "CollPerfWorkload",
    "IORWorkload",
    "SkewedWorkload",
    "SmallRequestWorkload",
]
