"""Benchmark workload generators: coll_perf, IOR, synthetic patterns,
and multi-tenant job-arrival streams."""

from .arrivals import JobArrival, PoissonArrivals, TraceArrivals
from .coll_perf import CollPerfWorkload
from .ior import IORWorkload
from .synthetic import SkewedWorkload, SmallRequestWorkload

__all__ = [
    "CollPerfWorkload",
    "IORWorkload",
    "JobArrival",
    "PoissonArrivals",
    "SkewedWorkload",
    "SmallRequestWorkload",
    "TraceArrivals",
]
