"""Seeded job-arrival generators for multi-tenant runs.

The tenancy layer (:mod:`repro.tenancy`) consumes a stream of
:class:`JobArrival` specs — when each job shows up and what it wants to
do — and maps them onto concrete jobs via
:func:`repro.tenancy.job.jobs_from_arrivals`.  Two generators cover the
usual experiment shapes:

* :class:`PoissonArrivals` — memoryless inter-arrival times at a given
  rate, with a read/write mix and per-job size distributions, all drawn
  from one ``numpy`` generator seeded explicitly (same seed, same
  stream, on any machine and at any ``--jobs`` sharding);
* :class:`TraceArrivals` — replay an explicit ``(time, op, ...)`` list,
  e.g. hand-written scenarios or schedules parsed from a batch-queue
  log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["JobArrival", "PoissonArrivals", "TraceArrivals"]


@dataclass(frozen=True)
class JobArrival:
    """One job's arrival: when it shows up and what it asks for."""

    index: int
    time: float
    op: str = "write"
    n_ranks: int = 4
    block: int = 64 * 1024
    steps: int = 1

    def __post_init__(self) -> None:
        if self.op not in ("write", "read"):
            raise ValueError(f"bad op {self.op!r}")
        if self.time < 0 or self.n_ranks < 1 or self.block < 1 or self.steps < 1:
            raise ValueError("need time >= 0, n_ranks/block/steps >= 1")


class PoissonArrivals:
    """Poisson job arrivals with a read/write mix and size draws.

    Parameters
    ----------
    rate:
        Mean arrivals per sim second (inter-arrival times are
        ``Exp(1/rate)``).
    n_jobs:
        Number of arrivals to generate.
    seed:
        Seed for the private ``numpy`` generator; the stream is a pure
        function of the constructor arguments.
    read_fraction:
        Probability a job is a read (vs. write).
    n_ranks:
        Rank count per job (constant; the tenancy mapper may override).
    blocks:
        Candidate per-rank block sizes, drawn uniformly per job.
    steps:
        Candidate step counts, drawn uniformly per job.
    """

    def __init__(
        self,
        rate: float,
        n_jobs: int,
        seed: int = 0,
        read_fraction: float = 0.0,
        n_ranks: int = 4,
        blocks: Sequence[int] = (64 * 1024,),
        steps: Sequence[int] = (1,),
    ):
        if rate <= 0 or n_jobs < 1:
            raise ValueError("need rate > 0 and n_jobs >= 1")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not blocks or not steps:
            raise ValueError("need at least one block size and step count")
        self.rate = float(rate)
        self.n_jobs = int(n_jobs)
        self.seed = int(seed)
        self.read_fraction = float(read_fraction)
        self.n_ranks = int(n_ranks)
        self.blocks = tuple(int(b) for b in blocks)
        self.steps = tuple(int(s) for s in steps)

    def jobs(self) -> list[JobArrival]:
        """Generate the arrival list (same seed, same list)."""
        rng = np.random.default_rng(self.seed)
        out = []
        t = 0.0
        for j in range(self.n_jobs):
            t += float(rng.exponential(1.0 / self.rate))
            op = "read" if float(rng.random()) < self.read_fraction else "write"
            block = self.blocks[int(rng.integers(len(self.blocks)))]
            steps = self.steps[int(rng.integers(len(self.steps)))]
            out.append(
                JobArrival(
                    index=j, time=t, op=op, n_ranks=self.n_ranks,
                    block=block, steps=steps,
                )
            )
        return out


class TraceArrivals:
    """Replay an explicit arrival trace.

    Each entry is ``(time, op)`` or ``(time, op, n_ranks, block, steps)``
    — short entries take the constructor defaults.
    """

    def __init__(
        self,
        trace: Sequence,
        n_ranks: int = 4,
        block: int = 64 * 1024,
        steps: int = 1,
    ):
        self.trace = list(trace)
        self.n_ranks = int(n_ranks)
        self.block = int(block)
        self.steps = int(steps)

    def jobs(self) -> list[JobArrival]:
        """Materialize the trace (arrivals sorted by time, ties in order)."""
        out = []
        for j, entry in enumerate(self.trace):
            time, op = entry[0], entry[1]
            n_ranks = entry[2] if len(entry) > 2 else self.n_ranks
            block = entry[3] if len(entry) > 3 else self.block
            steps = entry[4] if len(entry) > 4 else self.steps
            out.append(
                JobArrival(
                    index=j, time=float(time), op=op, n_ranks=int(n_ranks),
                    block=int(block), steps=int(steps),
                )
            )
        out.sort(key=lambda a: (a.time, a.index))
        return [
            JobArrival(
                index=j, time=a.time, op=a.op, n_ranks=a.n_ranks,
                block=a.block, steps=a.steps,
            )
            for j, a in enumerate(out)
        ]
