"""The IOR benchmark workload (LLNL / ASCI Purple suite).

IOR's shared-file mode writes ``segments`` repetitions of a block cycle:
in segment ``s``, rank ``r`` owns the contiguous block at
``(s * P + r) * block_size``.  With one segment the file decomposes
serially; with several, each rank's blocks interleave with every other
rank's — the "Interleaved" in IOR's name and the paper's "interleaved
read and write operations".

The paper runs 32 MB per process at 120 and 1080 processes.
:class:`IORWorkload` generates the per-rank file views;
:meth:`IORWorkload.paper` gives the paper-scale instance and
:meth:`scaled` shrinks it for fast runs.

A ``random`` layout variant shuffles block ownership within each segment
(seeded), matching IOR's random-offset option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.cluster.spec import MIB
from repro.core.request import AccessPattern, Extent
from repro.mpi.datatypes import vector_view

__all__ = ["IORWorkload"]

Layout = Literal["interleaved", "random"]


@dataclass(frozen=True)
class IORWorkload:
    """IOR shared-file access-pattern generator.

    Parameters
    ----------
    n_ranks:
        MPI processes.
    block_size:
        Contiguous bytes a rank writes per segment.
    segments:
        Block cycles; > 1 interleaves ranks' bounding intervals.
    layout:
        ``"interleaved"`` (deterministic cycle order) or ``"random"``
        (block positions shuffled per segment with `seed`).
    seed:
        RNG seed for the random layout.
    """

    n_ranks: int = 120
    block_size: int = 32 * MIB
    segments: int = 4
    layout: Layout = "interleaved"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        if self.layout not in ("interleaved", "random"):
            raise ValueError(f"bad layout {self.layout!r}")

    @classmethod
    def paper(cls, n_ranks: int = 120) -> "IORWorkload":
        """The paper's setup: 32 MB I/O data message per MPI process."""
        return cls(n_ranks=n_ranks, block_size=8 * MIB, segments=4)

    def scaled(self, factor: int) -> "IORWorkload":
        """Shrink the per-segment block by `factor`."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return IORWorkload(
            n_ranks=self.n_ranks,
            block_size=max(1, self.block_size // factor),
            segments=self.segments,
            layout=self.layout,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    @property
    def bytes_per_rank(self) -> int:
        """Bytes each rank moves per collective op."""
        return self.block_size * self.segments

    @property
    def total_bytes(self) -> int:
        """Bytes of the shared file."""
        return self.bytes_per_rank * self.n_ranks

    def _random_slots(self) -> np.ndarray:
        """``slots[s, r]`` = cycle position of rank r in segment s."""
        gen = np.random.default_rng(self.seed)
        return np.stack(
            [gen.permutation(self.n_ranks) for _ in range(self.segments)]
        )

    def pattern(self, rank: int) -> AccessPattern:
        """File view of `rank`."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        cycle = self.n_ranks * self.block_size
        if self.layout == "interleaved":
            return vector_view(
                offset=rank * self.block_size,
                count=self.segments,
                block=self.block_size,
                stride=cycle,
            )
        slots = self._random_slots()
        extents = sorted(
            Extent(s * cycle + int(slots[s, rank]) * self.block_size, self.block_size)
            for s in range(self.segments)
        )
        return AccessPattern.from_extents(extents).coalesce()

    def patterns(self) -> list[AccessPattern]:
        """File views of all ranks."""
        return [self.pattern(r) for r in range(self.n_ranks)]

    @property
    def description(self) -> str:
        """Human-readable label."""
        return (
            f"IOR {self.layout} {self.bytes_per_rank / 2**20:.1f} MiB/proc "
            f"({self.segments} seg x {self.block_size / 2**20:.1f} MiB) "
            f"on {self.n_ranks} procs"
        )
