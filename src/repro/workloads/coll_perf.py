"""The coll_perf benchmark workload (ROMIO test suite).

coll_perf writes and reads a 3D block-distributed array to a file laid
out in row-major order of the global array.  The paper runs it with a
2048x2048x2048 array (4-byte elements, 32 GB) on 120 MPI processes.

:class:`CollPerfWorkload` reproduces the access-pattern generation; the
paper-scale instance is :meth:`CollPerfWorkload.paper`, and
:meth:`scaled` shrinks the array for fast benchmark runs while keeping
the decomposition geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.request import AccessPattern
from repro.mpi.datatypes import block_decompose_3d, subarray_view_3d

__all__ = ["CollPerfWorkload"]


@dataclass(frozen=True)
class CollPerfWorkload:
    """3D block-distributed array I/O, row-major file layout.

    Parameters
    ----------
    array_shape:
        Global array dimensions ``(nx, ny, nz)``.
    n_ranks:
        MPI processes; the processor grid comes from
        :func:`~repro.mpi.datatypes.dims_create`.
    elem_size:
        Bytes per array element (coll_perf uses 4-byte ints).
    """

    array_shape: tuple[int, int, int] = (2048, 2048, 2048)
    n_ranks: int = 120
    elem_size: int = 4

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.elem_size < 1:
            raise ValueError("elem_size must be >= 1")
        if any(d < 1 for d in self.array_shape):
            raise ValueError(f"bad array shape {self.array_shape}")

    @classmethod
    def paper(cls) -> "CollPerfWorkload":
        """The paper's configuration: 2048^3 x 4 B = 32 GB on 120 procs."""
        return cls(array_shape=(2048, 2048, 2048), n_ranks=120, elem_size=4)

    def scaled(self, factor: int) -> "CollPerfWorkload":
        """Shrink every dimension by `factor` (for fast benchmark runs)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        nx, ny, nz = self.array_shape
        shape = (max(1, nx // factor), max(1, ny // factor), max(1, nz // factor))
        return CollPerfWorkload(shape, self.n_ranks, self.elem_size)

    # ------------------------------------------------------------------
    @cached_property
    def blocks(self) -> list[tuple[tuple[int, int, int], tuple[int, int, int]]]:
        """Per-rank ``(starts, sub_shape)`` of the decomposition."""
        return block_decompose_3d(self.array_shape, self.n_ranks)

    @property
    def total_bytes(self) -> int:
        """Bytes of the whole array (= bytes moved per collective op)."""
        nx, ny, nz = self.array_shape
        return nx * ny * nz * self.elem_size

    def pattern(self, rank: int) -> AccessPattern:
        """File view of `rank`'s block."""
        starts, shape = self.blocks[rank]
        return subarray_view_3d(self.array_shape, shape, starts, self.elem_size)

    def patterns(self) -> list[AccessPattern]:
        """File views of all ranks."""
        return [self.pattern(r) for r in range(self.n_ranks)]

    @property
    def description(self) -> str:
        """Human-readable label."""
        nx, ny, nz = self.array_shape
        return (
            f"coll_perf {nx}x{ny}x{nz} x {self.elem_size} B "
            f"({self.total_bytes / 2**20:.0f} MiB) on {self.n_ranks} procs"
        )
