"""The tenancy host: N concurrent jobs on one sim clock.

One :class:`TenancyHost` owns the shared platform — environment,
cluster (and therefore the lease ledger), parallel file system — and
drives every submitted :class:`~repro.tenancy.job.TenantJob` through
the same lifecycle:

1. **arrival** — the job's process sleeps until its arrival time, then
   joins the admission queue;
2. **admission** — the scheduler policy is consulted about the queue
   head whenever the queue could move (an arrival or a completion);
   admitted jobs leave the queue strictly in arrival order;
3. **run** — the job gets its *own* communicator on the shared cluster,
   its own engine (``tenant=job.name``), and its own file handle, and
   its rank processes execute concurrently with every other admitted
   job's — shuffle traffic, PFS requests, and lease grants all contend
   on the shared resources;
4. **completion** — the lifecycle is recorded and the queue is pumped
   again.

Determinism: every decision is a function of the submission set and the
sim clock.  Jobs are submitted in a fixed order, their processes are
created in that order (tie-breaking same-instant arrivals), and the
queue never reorders — so a fixed seed replays byte-identical
:class:`~repro.tenancy.job.JobRecord` streams.

With a tracer installed, each job lays its lifecycle on its own
synthetic Perfetto track (``pid = PID_JOB_BASE - index``): an arrival
instant, a ``job.wait`` span while queued, and a ``job.run`` span while
executing — next to the shared node/PFS tracks, which is what makes
cross-job interference directly visible.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cluster import Cluster, ClusterSpec
from repro.core import MemoryConsciousCollectiveIO
from repro.mpi import SimComm, SimFile, contiguous_view
from repro.obs import Tracer
from repro.obs.tracer import PID_JOB_BASE
from repro.pfs import ParallelFileSystem, SparseFile
from repro.sim import Environment, RngFactory

from .job import JobRecord, TenantJob
from .scheduler import FreeForAll, SchedulerPolicy, SchedulerState

__all__ = ["TenancyHost", "run_isolated"]


class TenancyHost:
    """Host N concurrent tenant jobs on one shared simulated platform.

    Parameters
    ----------
    spec:
        Hardware description of the shared cluster + PFS.
    seed:
        Platform RNG seed (memory-availability draws etc.).
    policy:
        Admission policy (default :class:`FreeForAll`).
    with_data:
        Back the PFS with a real datastore so payload bytes land.
    tracer:
        Optional tracer, installed with a timeline offset like
        :meth:`repro.experiments.harness.Platform.build`.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        seed: int = 0,
        policy: Optional[SchedulerPolicy] = None,
        with_data: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        self.spec = spec
        self.env = Environment()
        if tracer is not None:
            tracer.install(self.env, offset=tracer.max_ts())
        self.cluster = Cluster(self.env, spec, RngFactory(seed))
        store = SparseFile() if with_data else None
        self.pfs = ParallelFileSystem(self.env, spec.storage, datastore=store)
        self.policy = policy if policy is not None else FreeForAll()
        #: Submitted jobs, submission order.
        self.jobs: list[TenantJob] = []
        #: ``job name -> engine`` of every job that started.
        self.engines: dict[str, MemoryConsciousCollectiveIO] = {}
        #: ``job name -> SimFile`` of every job that started.
        self.files: dict[str, SimFile] = {}
        #: ``job name -> JobRecord`` of every completed job.
        self.records: dict[str, JobRecord] = {}
        self._waiting: list[TenantJob] = []
        self._running: list[TenantJob] = []
        self._admission: dict[str, object] = {}
        self._ran = False

    @property
    def pfs_bandwidth(self) -> float:
        """Aggregate server bandwidth of the shared PFS, bytes/s."""
        return self.spec.storage.servers * self.spec.storage.server_bandwidth

    # ------------------------------------------------------------------
    def submit(self, job: TenantJob) -> TenantJob:
        """Queue `job` for the next :meth:`run` (submission order)."""
        if self._ran:
            raise RuntimeError("host already ran; build a fresh one")
        if any(j.name == job.name for j in self.jobs):
            raise ValueError(f"duplicate job name {job.name!r}")
        self.jobs.append(job)
        return job

    def run(self) -> list[JobRecord]:
        """Drive every submitted job to completion on one sim clock.

        Returns the per-job records in submission order.  Read jobs'
        file regions are prefilled with their deterministic payload
        bytes first (host-side, no simulated time).
        """
        if self._ran:
            raise RuntimeError("host already ran; build a fresh one")
        self._ran = True
        store = self.pfs.datastore
        if store is not None:
            for job in self.jobs:
                if job.op == "read" and job.main_fn is None:
                    for r in range(job.n_ranks):
                        store.write(
                            job.offset + r * job.block, job.payload(r)
                        )
        procs = [
            self.env.process(
                self._job_proc(job, index), name=f"tenancy.{job.name}"
            )
            for index, job in enumerate(self.jobs)
        ]
        if procs:
            self.env.run(until=self.env.all_of(procs))
        return [self.records[job.name] for job in self.jobs]

    # ------------------------------------------------------------------
    def _state(self) -> SchedulerState:
        return SchedulerState(
            now=self.env.now,
            running=tuple(j.name for j in self._running),
            waiting=tuple(j.name for j in self._waiting),
            n_servers=self.spec.storage.servers,
        )

    def _pump(self) -> None:
        """Admit queue heads while the policy allows (no overtaking)."""
        while self._waiting:
            job = self._waiting[0]
            if not self.policy.admit(job, self._state()):
                break
            self._waiting.pop(0)
            self._running.append(job)
            self._admission[job.name].succeed()

    def _job_proc(self, job: TenantJob, index: int):
        env = self.env
        tracer = env.tracer
        pid = PID_JOB_BASE - index
        if job.arrival > env.now:
            yield env.sleep(job.arrival - env.now)
        arrived = env.now
        if tracer.enabled:
            tracer.instant(
                "tenancy", "job.arrive", pid, 0,
                job=job.name, op=job.op, ranks=job.n_ranks,
            )
        ev = env.event()
        self._admission[job.name] = ev
        self._waiting.append(job)
        self._pump()
        if not ev.triggered:
            yield ev
        admitted = env.now
        if tracer.enabled and admitted > arrived:
            tracer.complete(
                "tenancy", "job.wait", pid, 0, arrived, admitted - arrived,
                job=job.name, policy=self.policy.name,
            )
        comm = SimComm(env, self.cluster, list(job.placement))
        engine = MemoryConsciousCollectiveIO(
            comm, self.pfs, job.config, tenant=job.name
        )
        self.engines[job.name] = engine
        fh = SimFile.open(comm, engine)
        self.files[job.name] = fh
        rank_procs = comm.launch(
            lambda ctx, _fh=fh, _job=job: self._rank_body(ctx, _fh, _job)
        )
        yield env.all_of(rank_procs)
        finished = env.now
        if tracer.enabled:
            tracer.complete(
                "tenancy", "job.run", pid, 0, admitted, finished - admitted,
                job=job.name, op=job.op, steps=job.steps,
            )
        self._running.remove(job)
        self.records[job.name] = JobRecord(
            name=job.name,
            op=job.op,
            mode=job.mode,
            steps=job.steps,
            n_ranks=job.n_ranks,
            total_bytes=job.total_bytes,
            arrived=arrived,
            admitted=admitted,
            finished=finished,
            collectives=len(engine.history),
            replans=sum(pc.replans for pc in fh._pcs),
        )
        self._pump()

    def _rank_body(self, ctx, fh: SimFile, job: TenantJob):
        if job.main_fn is not None:
            return (yield from job.main_fn(ctx, fh, job))
        fh.set_view(
            ctx, contiguous_view(job.offset + ctx.rank * job.block, job.block)
        )
        payload = job.payload(ctx.rank) if job.op == "write" else None
        if job.mode == "blocking":
            for _ in range(job.steps):
                if job.op == "write":
                    yield from fh.write_all(ctx, payload)
                else:
                    yield from fh.read_all(ctx)
            return
        init = fh.write_all_init if job.op == "write" else fh.read_all_init
        pc = init(ctx, overlap=(job.mode == "persistent+overlap"))
        for _ in range(job.steps):
            pc.start(ctx, payload)
            yield from pc.wait(ctx)


def run_isolated(
    spec: ClusterSpec,
    job: TenantJob,
    seed: int = 0,
    availability=None,
    with_data: bool = True,
) -> JobRecord:
    """Run `job` alone on a fresh, identical platform (the baseline).

    The job's arrival is zeroed (it never queues) and everything else —
    placement, size, mode, config — is preserved, so
    ``shared.elapsed / isolated.elapsed`` is the pure contention
    slowdown.  `availability` (per-node bytes) pins the same memory
    regime the shared run used.
    """
    host = TenancyHost(spec, seed=seed, with_data=with_data)
    if availability is not None:
        host.cluster.set_memory_availability(availability)
    host.submit(replace(job, arrival=0.0))
    return host.run()[0]
