"""Multi-tenant collective I/O: concurrent jobs sharing one platform.

The rest of the simulator runs one collective at a time; real
extreme-scale PFS pain is N concurrent jobs hammering the same OSTs.
This package hosts multiple jobs — each with its *own* communicator,
engine, and file handle — on one :class:`~repro.sim.engine.Environment`,
sharing the cluster's nodes, network links, PFS servers, and lease
ledger, so cross-job interference is simulated rather than assumed:

* :class:`TenantJob` / :class:`JobRecord` — one job's spec (placement,
  arrival time, op, size, execution mode) and its measured lifecycle;
* :class:`TenancyHost` — admits, launches, and accounts the jobs on one
  sim clock, deterministically for a fixed submission set;
* the scheduler seam (:class:`SchedulerPolicy` and the stock
  :class:`FreeForAll` / :class:`FifoAdmission` / :class:`OstThrottle`
  policies) — pluggable cooperative admission;
* fairness metrics (:func:`jain_index`, :class:`FairnessReport`) —
  per-job slowdown vs. an isolated baseline, the Jain fairness index
  over those slowdowns, and aggregate PFS utilization.

Each tenant's engine is constructed with ``tenant=job.name``, so lease
grant/revoke events from one job never invalidate another job's plan
cache or persistent handles (see
:meth:`repro.core.plan_cache.PlanCache.on_lease_event`).
"""

from .job import JobRecord, TenantJob, jobs_from_arrivals
from .metrics import FairnessReport, jain_index
from .scheduler import (
    FifoAdmission,
    FreeForAll,
    OstThrottle,
    SchedulerPolicy,
    SchedulerState,
    resolve_policy,
)
from .host import TenancyHost, run_isolated

__all__ = [
    "FairnessReport",
    "FifoAdmission",
    "FreeForAll",
    "JobRecord",
    "OstThrottle",
    "SchedulerPolicy",
    "SchedulerState",
    "TenancyHost",
    "TenantJob",
    "jain_index",
    "jobs_from_arrivals",
    "resolve_policy",
    "run_isolated",
]
