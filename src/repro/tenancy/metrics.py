"""Cross-job fairness metrics for multi-tenant runs.

Definitions (used consistently by the sweep, the docs, and the tests):

* **per-job slowdown** — ``shared_elapsed / isolated_elapsed``: the
  job's admission-to-completion time on the contended platform divided
  by the same job's time running *alone* on an identical platform.
  1.0 = no interference; queueing delay is reported separately
  (``JobRecord.wait``) so the slowdown isolates contention from policy.
* **Jain fairness index** — ``J(x) = (Σxᵢ)² / (n · Σxᵢ²)`` over the
  per-job slowdowns.  1.0 when every tenant suffers equally; toward
  ``1/n`` when one tenant absorbs all the interference.
* **aggregate PFS utilization** — total payload bytes moved by all jobs
  divided by ``makespan × (servers × server_bandwidth)``: the fraction
  of the storage system's aggregate bandwidth the tenant mix achieved
  end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["FairnessReport", "jain_index"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` of non-negative values.

    1.0 for a perfectly even allocation (including the empty and the
    all-zero cases, which are vacuously fair), approaching ``1/n`` as a
    single value dominates.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    s = sum(xs)
    s2 = sum(x * x for x in xs)
    if s2 == 0.0:
        return 1.0
    return (s * s) / (len(xs) * s2)


@dataclass(frozen=True)
class FairnessReport:
    """Cross-job metrics of one multi-tenant run."""

    slowdowns: tuple
    jain: float
    makespan: float
    pfs_utilization: float
    total_bytes: int

    @property
    def mean_slowdown(self) -> float:
        """Arithmetic mean of the per-job slowdowns."""
        return sum(self.slowdowns) / len(self.slowdowns) if self.slowdowns else 1.0

    @property
    def max_slowdown(self) -> float:
        """Worst tenant's slowdown."""
        return max(self.slowdowns) if self.slowdowns else 1.0

    @classmethod
    def build(
        cls, records, baselines, pfs_bandwidth: float
    ) -> "FairnessReport":
        """Compute the report from paired shared/isolated records.

        Parameters
        ----------
        records:
            :class:`~repro.tenancy.job.JobRecord` list from the shared
            run (submission order).
        baselines:
            Matching records of each job running alone on an identical
            platform (same order).
        pfs_bandwidth:
            Aggregate server bandwidth, bytes/s
            (``servers * server_bandwidth``).
        """
        if len(records) != len(baselines):
            raise ValueError(
                f"{len(records)} shared records vs {len(baselines)} baselines"
            )
        slowdowns = tuple(
            (r.elapsed / b.elapsed) if b.elapsed > 0 else 1.0
            for r, b in zip(records, baselines)
        )
        if records:
            makespan = max(r.finished for r in records) - min(
                r.arrived for r in records
            )
        else:
            makespan = 0.0
        total = sum(r.total_bytes for r in records)
        util = (
            total / (makespan * pfs_bandwidth)
            if makespan > 0 and pfs_bandwidth > 0
            else 0.0
        )
        return cls(
            slowdowns=slowdowns,
            jain=jain_index(slowdowns),
            makespan=makespan,
            pfs_utilization=util,
            total_bytes=total,
        )
