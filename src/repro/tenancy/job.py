"""Tenant job specs and per-job lifecycle records."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import MCIOConfig

__all__ = ["JobRecord", "TenantJob", "jobs_from_arrivals"]


@dataclass
class TenantJob:
    """One tenant's collective-I/O job on a shared platform.

    The default body is an iterative checkpoint loop: every rank owns a
    contiguous ``block`` at ``offset + rank * block`` and writes (or
    reads) it collectively ``steps`` times, either as fresh blocking
    collectives or through a persistent handle (``mode``).  A custom
    body — e.g. a sweep cell's own loop — replaces it via `main_fn`.

    Parameters
    ----------
    name:
        Tenant identity; stamped on the job's engine (and therefore its
        leases) so invalidation stays per-job.  Must be unique per host.
    placement:
        ``placement[rank]`` = node id on the *shared* cluster.  Jobs may
        occupy disjoint node subsets or co-locate ranks on the same
        nodes (contending for node memory); each job's communicator
        validates its own placement independently.
    arrival:
        Sim time at which the job enters the admission queue.
    op / steps / block / offset / mode / payload_seed:
        The default checkpoint body: `mode` is ``"blocking"``,
        ``"persistent"``, or ``"persistent+overlap"``; `payload_seed`
        varies the deterministic byte pattern so distinct jobs write
        distinct data.
    config:
        Engine config (a fresh default :class:`MCIOConfig` if None).
    main_fn:
        Optional custom rank body ``main_fn(ctx, fh, job)`` — a process
        generator run instead of the checkpoint loop.
    """

    name: str
    placement: Sequence[int]
    arrival: float = 0.0
    op: str = "write"
    steps: int = 1
    block: int = 64 * 1024
    offset: int = 0
    mode: str = "blocking"
    payload_seed: int = 0
    config: Optional[MCIOConfig] = None
    main_fn: Optional[Callable] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.op not in ("write", "read"):
            raise ValueError(f"bad op {self.op!r}")
        if self.mode not in ("blocking", "persistent", "persistent+overlap"):
            raise ValueError(f"bad mode {self.mode!r}")
        if self.steps < 1 or self.block < 1 or not self.placement:
            raise ValueError("need steps >= 1, block >= 1, a placement")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")

    @property
    def n_ranks(self) -> int:
        """Ranks in this job's communicator."""
        return len(self.placement)

    @property
    def region_bytes(self) -> int:
        """File-region footprint (one block per rank)."""
        return self.n_ranks * self.block

    @property
    def total_bytes(self) -> int:
        """Bytes the whole job moves over all steps."""
        return self.steps * self.region_bytes

    def payload(self, rank: int) -> np.ndarray:
        """Deterministic per-rank bytes (a function of seed and rank)."""
        idx = np.arange(self.block, dtype=np.int64)
        mix = idx * 31 + rank * 97 + self.payload_seed * 131 + 13
        return (mix % 251).astype(np.uint8)


@dataclass
class JobRecord:
    """One job's measured lifecycle on the shared platform.

    All times are sim seconds.  ``elapsed`` (admission to completion) is
    what slowdown compares against the isolated baseline; ``wait`` is
    the admission delay the scheduler policy imposed on top.
    """

    name: str
    op: str
    mode: str
    steps: int
    n_ranks: int
    total_bytes: int
    arrived: float
    admitted: float
    finished: float
    collectives: int = 0
    replans: int = 0

    @property
    def wait(self) -> float:
        """Seconds spent queued before admission."""
        return self.admitted - self.arrived

    @property
    def elapsed(self) -> float:
        """Seconds from admission to completion (the running time)."""
        return self.finished - self.admitted

    @property
    def span(self) -> float:
        """Seconds from arrival to completion (what the tenant felt)."""
        return self.finished - self.arrived

    def to_json(self) -> dict:
        """Stable plain-dict form (byte-identical for identical runs)."""
        return {
            "name": self.name,
            "op": self.op,
            "mode": self.mode,
            "steps": self.steps,
            "n_ranks": self.n_ranks,
            "total_bytes": self.total_bytes,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "finished": self.finished,
            "collectives": self.collectives,
            "replans": self.replans,
        }

    def to_json_str(self) -> str:
        """Canonical JSON line (sorted keys, no whitespace)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


def jobs_from_arrivals(
    arrivals,
    n_nodes: int,
    ranks_per_job: Optional[int] = None,
    layout: str = "striped",
    config: Optional[MCIOConfig] = None,
    mode: str = "blocking",
) -> list[TenantJob]:
    """Map an arrival stream onto concrete :class:`TenantJob` specs.

    Parameters
    ----------
    arrivals:
        Iterable of :class:`~repro.workloads.arrivals.JobArrival`.
    n_nodes:
        Node count of the shared cluster.
    ranks_per_job:
        Override of each arrival's rank count (None keeps them).
    layout:
        ``"striped"`` — job *j*'s ranks go round-robin over all nodes
        starting at node ``j`` (neighbouring jobs co-locate, contending
        for node memory and NICs); ``"packed"`` — job *j* occupies the
        contiguous node window starting at ``(j * ranks) % n_nodes``
        (disjoint subsets while the cluster has room).
    config / mode:
        Engine config template and execution mode for every job.

    File regions never overlap: job *j* starts at the running sum of the
    previous jobs' region sizes.
    """
    if layout not in ("striped", "packed"):
        raise ValueError(f"bad layout {layout!r}")
    jobs = []
    offset = 0
    for j, arr in enumerate(arrivals):
        n_ranks = ranks_per_job if ranks_per_job is not None else arr.n_ranks
        if layout == "striped":
            placement = [(j + i) % n_nodes for i in range(n_ranks)]
        else:
            base = (j * n_ranks) % n_nodes
            placement = [(base + i) % n_nodes for i in range(n_ranks)]
        job = TenantJob(
            name=f"job{j}",
            placement=placement,
            arrival=arr.time,
            op=arr.op,
            steps=arr.steps,
            block=arr.block,
            offset=offset,
            mode=mode,
            payload_seed=j,
            config=config,
        )
        jobs.append(job)
        offset += job.region_bytes
    return jobs
