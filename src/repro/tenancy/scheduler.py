"""Cooperative admission policies for the tenancy host.

The host keeps an arrival-ordered admission queue and asks the policy
about its *head* whenever the queue could move — a job arriving, a job
completing.  Policies therefore never reorder tenants (no overtaking,
which keeps runs deterministic and starvation-free); they only decide
*when* the next tenant may start.  The three stock policies span the
design space the experiments sweep:

* :class:`FreeForAll` — admit immediately; every tenant contends for
  the PFS and network at once (the "no scheduler" baseline);
* :class:`FifoAdmission` — at most `width` jobs run concurrently (the
  classic batch-queue serialization, ``width=1`` by default);
* :class:`OstThrottle` — concurrency scales with the shared file
  system's server count: admit while the running set claims fewer than
  ``ceil(n_servers * jobs_per_ost)`` slots.  With enough OSTs the
  throttle behaves like free-for-all; on a narrow PFS it degrades
  toward FIFO — an OST-aware middle ground.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "FifoAdmission",
    "FreeForAll",
    "OstThrottle",
    "SchedulerPolicy",
    "SchedulerState",
    "resolve_policy",
]


@dataclass(frozen=True)
class SchedulerState:
    """What the policy may look at when deciding the queue head.

    Attributes
    ----------
    now:
        Current sim time.
    running:
        Names of currently admitted, unfinished jobs (admission order).
    waiting:
        Names of queued jobs, arrival order (head first — the job being
        decided).
    n_servers:
        I/O server (OST) count of the shared file system.
    """

    now: float
    running: tuple
    waiting: tuple
    n_servers: int


class SchedulerPolicy:
    """Admission seam: decide whether the queue head may start now."""

    name = "policy"

    def admit(self, job, state: SchedulerState) -> bool:
        """True to admit `job` (the queue head) at ``state.now``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class FreeForAll(SchedulerPolicy):
    """Concurrent free-for-all: every arrival is admitted immediately."""

    name = "free-for-all"

    def admit(self, job, state: SchedulerState) -> bool:
        return True


class FifoAdmission(SchedulerPolicy):
    """At most `width` concurrent jobs, strictly in arrival order."""

    name = "fifo"

    def __init__(self, width: int = 1):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = int(width)

    def admit(self, job, state: SchedulerState) -> bool:
        return len(state.running) < self.width


class OstThrottle(SchedulerPolicy):
    """Cap concurrency at ``ceil(n_servers * jobs_per_ost)`` jobs.

    The cap tracks the storage system's parallelism instead of a fixed
    number: a job stripes its aggregated requests over every OST, so
    once a few jobs are in flight each extra tenant only deepens the
    per-server queues (the interference the fairness metrics measure).
    """

    name = "ost-throttle"

    def __init__(self, jobs_per_ost: float = 0.5):
        if jobs_per_ost <= 0:
            raise ValueError("jobs_per_ost must be > 0")
        self.jobs_per_ost = float(jobs_per_ost)

    def cap(self, n_servers: int) -> int:
        """Concurrent-job cap for a PFS with `n_servers` OSTs."""
        return max(1, math.ceil(n_servers * self.jobs_per_ost))

    def admit(self, job, state: SchedulerState) -> bool:
        return len(state.running) < self.cap(state.n_servers)


#: CLI names -> policy factories (zero-argument, stock parameters).
_POLICIES = {
    FreeForAll.name: FreeForAll,
    FifoAdmission.name: FifoAdmission,
    OstThrottle.name: OstThrottle,
}


def resolve_policy(name: str) -> SchedulerPolicy:
    """Instantiate a stock policy by its CLI name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r} (choose from {sorted(_POLICIES)})"
        ) from None
