"""Seeded random-number helpers.

Every stochastic element of a simulation (memory-availability variance,
random workload offsets, ...) draws from streams derived from a single root
seed, so a run is reproducible from ``(config, seed)`` alone.

Streams are derived with :class:`numpy.random.SeedSequence` spawning, which
guarantees independence between named substreams without manual seed
arithmetic.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a child seed from `root_seed` and a path of names.

    Deterministic and platform-independent (CRC32 of the path mixed into a
    SeedSequence), so the same ``(root_seed, names)`` always yields the same
    child seed.
    """
    path = "/".join(str(n) for n in names)
    tag = zlib.crc32(path.encode("utf-8"))
    seq = np.random.SeedSequence([root_seed & 0xFFFFFFFF, tag])
    return int(seq.generate_state(1, dtype=np.uint64)[0])


class RngFactory:
    """Factory handing out named, independent random generators.

    Parameters
    ----------
    root_seed:
        The experiment's single root seed.

    Example
    -------
    >>> f = RngFactory(1234)
    >>> a = f.stream("memory")
    >>> b = f.stream("workload")
    >>> a is not b
    True
    >>> f2 = RngFactory(1234)
    >>> float(a.random()) == float(f2.stream("memory").random())
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, *names: str | int) -> np.random.Generator:
        """Return the generator for substream `names` (created on first use)."""
        key = "/".join(str(n) for n in names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *names))
            self._streams[key] = gen
        return gen

    def spawn(self, *names: str | int) -> "RngFactory":
        """Return a child factory rooted at a derived seed."""
        return RngFactory(derive_seed(self.root_seed, *names))

    def seeds(self, count: int, *names: str | int) -> Iterator[int]:
        """Yield `count` independent child seeds under the given path."""
        for i in range(count):
            yield derive_seed(self.root_seed, *names, i)
