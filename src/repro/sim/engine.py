"""Deterministic discrete-event simulation kernel.

This module implements the minimal event-driven core that the rest of the
package runs on: an :class:`Environment` holding a time-ordered event queue,
:class:`Process` coroutines written as Python generators, and the primitive
waitable objects (:class:`Timeout`, :class:`Event`, :class:`AllOf`,
:class:`AnyOf`).

The design follows the well-known SimPy process-interaction style, but is
implemented from scratch so the whole simulator is self-contained and
completely deterministic:

* the event queue orders events by ``(time, priority, sequence)``, so ties in
  simulated time are broken by scheduling order, never by hash order or
  wall-clock effects;
* no global state — every simulation owns its :class:`Environment`.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "b", 2.0))
>>> _ = env.process(worker(env, "a", 1.0))
>>> env.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

import heapq

from heapq import heappop as _heappop, heappush as _heappush
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.tracer import NULL_TRACER, PID_KERNEL

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Event priority for "urgent" events processed before normal ones at the
#: same simulated time (used internally for process resumption bookkeeping).
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot waitable occurrence.

    An event starts *pending*, becomes *triggered* once a value or an
    exception is attached and it is scheduled, and finally *processed* when
    the environment pops it off the queue and runs its callbacks.

    Processes wait on events by ``yield``-ing them.  When the event is
    processed, each waiting process is resumed with the event's value (or has
    the event's exception thrown into it).
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value/exception has been attached and scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event carries a value rather than an exception."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event succeeded with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if not self._triggered:
            raise SimulationError("event value not yet available")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event failed with, if any."""
        return self._exception

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with `value`."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # flattened hot path: a Timeout is born triggered and scheduled,
        # so initialisation and scheduling are fused into direct slot
        # writes instead of chaining through Event.__init__/_schedule
        self.env = env
        self.callbacks = []
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self.delay = delay
        seq = env._seq + 1
        env._seq = seq
        _heappush(env._queue, (env._now + delay, NORMAL, seq, self))


class _PooledTimeout(Timeout):
    """A recyclable timeout handed out by :meth:`Environment.sleep`.

    The event loop returns processed instances to the environment's free
    list, so hot paths that fire millions of plain delays stop churning
    the allocator.  Never retain or compose one: it must be ``yield``-ed
    immediately and forgotten (see :meth:`Environment.sleep`).

    ``_waiter`` is the single-process fast path: when exactly one process
    yields the sleep (the only supported pattern), its resume callback is
    stored in this slot instead of the callbacks list, and the event loop
    invokes it directly — no list append/iterate/clear per fired sleep.
    """

    __slots__ = ("_waiter",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        super().__init__(env, delay, value)
        self._waiter: Optional[Callable[["Event"], None]] = None


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment"):
        # flattened like Timeout: born triggered, scheduled urgently
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._triggered = True
        self._processed = False
        seq = env._seq + 1
        env._seq = seq
        _heappush(env._queue, (env._now, URGENT, seq, self))


class Process(Event):
    """A running coroutine (generator) inside the simulation.

    A process *is* an event: it triggers when the underlying generator
    returns (value = the generator's return value) or raises (the process
    fails with that exception).  Other processes can therefore ``yield`` a
    process to join it.
    """

    __slots__ = (
        "_generator",
        "_target",
        "name",
        "_send",
        "_throw",
        "_resume_cb",
        "_sleep_cb",
    )

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Event this process is currently waiting on (None if runnable).
        self._target: Optional[Event] = None
        # bind the generator methods and the resume callbacks once — every
        # wait re-registers a callback, and creating a fresh bound
        # method per wait is measurable on the hot path
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self._sleep_cb = self._resume_sleep
        init = Initialize(env)
        init.callbacks.append(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event (the event
        itself is unaffected and may still fire for other waiters).
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._target
        if target is not None:
            if getattr(target, "_waiter", None) is self._sleep_cb:
                target._waiter = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:  # pragma: no cover - already detached
                    pass
        self._target = None
        carrier = Event(self.env)
        carrier.callbacks.append(self._resume_cb)
        carrier.fail(Interrupt(cause), priority=URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the result of `event`."""
        self._target = None
        send = self._send
        while True:
            try:
                if event._exception is None:
                    next_target = send(event._value)
                else:
                    next_target = self._throw(event._exception)
            except StopIteration as stop:
                self._triggered = True
                self._value = stop.value
                self.env._schedule(self, delay=0.0)
                return
            except BaseException as exc:
                self._triggered = True
                self._exception = exc
                self.env._schedule(self, delay=0.0)
                if not self.callbacks:
                    # Nobody is joining this process: surface the crash
                    # instead of swallowing it silently.
                    self.env._crashed.append((self, exc))
                return

            try:
                if next_target._processed:
                    # Already-processed events resume immediately (same time).
                    event = next_target
                    continue
                if next_target.__class__ is _PooledTimeout and not next_target.callbacks:
                    # sole-waiter fast path: skip the callbacks list entirely
                    next_target._waiter = self._sleep_cb
                else:
                    next_target.callbacks.append(self._resume_cb)
            except AttributeError:
                # duck-typed event check: anything without the Event slots
                # (e.g. a yielded None) lands here, off the hot path
                exc2 = SimulationError(
                    f"process {self.name!r} yielded non-event {next_target!r}"
                )
                event = Event(self.env)
                event._triggered = True
                event._exception = exc2
                continue
            self._target = next_target
            return

    def _resume_sleep(self, event: Event) -> None:
        """Advance the generator after a pooled sleep fired.

        Only ever invoked through :attr:`_PooledTimeout._waiter`, which
        :meth:`interrupt` detaches before throwing — so the resume is
        always clean: no value, no exception, no checks.
        """
        try:
            next_target = self._send(None)
        except StopIteration as stop:
            self._target = None
            self._triggered = True
            self._value = stop.value
            self.env._schedule(self, delay=0.0)
            return
        except BaseException as exc:
            self._target = None
            self._triggered = True
            self._exception = exc
            self.env._schedule(self, delay=0.0)
            if not self.callbacks:
                self.env._crashed.append((self, exc))
            return
        try:
            if next_target._processed:
                # rare: already-processed target; generic path handles the
                # immediate-resume loop
                self._target = None
                self._resume(next_target)
                return
            if next_target.__class__ is _PooledTimeout and not next_target.callbacks:
                next_target._waiter = self._sleep_cb
            else:
                next_target.callbacks.append(self._resume_cb)
        except AttributeError:
            exc2 = SimulationError(
                f"process {self.name!r} yielded non-event {next_target!r}"
            )
            carrier = Event(self.env)
            carrier._triggered = True
            carrier._exception = exc2
            self._resume(carrier)
            return
        self._target = next_target


class ConditionError(SimulationError):
    """A sub-event of a condition failed."""


class AllOf(Event):
    """Composite event that fires when *all* sub-events have fired.

    The value is the list of sub-event values in the order given.  If any
    sub-event fails, the condition fails with that exception.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._remaining = 0
        on_sub = self._on_sub
        for ev in self._events:
            if ev._processed:
                if ev._exception is not None:
                    self._check_fail(ev)
                    # outcome decided: registering on the remaining
                    # sub-events would only add dead callbacks
                    break
            else:
                self._remaining += 1
                ev.callbacks.append(on_sub)
        if self._remaining == 0 and not self._triggered:
            self.succeed([ev._value for ev in self._events])

    def _check_fail(self, ev: Event) -> None:
        if not self._triggered:
            self.fail(ev._exception)  # type: ignore[arg-type]

    def _on_sub(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Composite event that fires when *any* sub-event fires.

    The value is ``(index, value)`` of the first sub-event to fire.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        on_sub = self._on_sub
        for i, ev in enumerate(self._events):
            if ev._processed:
                if ev._exception is not None:
                    self.fail(ev._exception)
                else:
                    self.succeed((i, ev._value))
                return
            ev.callbacks.append(on_sub)

    def _on_sub(self, ev: Event) -> None:
        # one shared bound method instead of a closure per sub-event;
        # the winner's index is resolved lazily, only when it fires
        if self._triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
            return
        for i, cand in enumerate(self._events):
            if cand is ev:
                self.succeed((i, ev._value))
                return


class Environment:
    """Owns the simulated clock and the event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    """

    #: Upper bound on recycled sleep events kept per environment (large
    #: enough that thousands of concurrently sleeping processes still
    #: recycle instead of allocating; each pooled object is tiny).
    _SLEEP_POOL_MAX = 4096

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: Processes that died with an exception while nobody was joining
        #: them; ``run()`` re-raises the first of these.
        self._crashed: list[tuple[Process, BaseException]] = []
        #: Free list of processed :class:`_PooledTimeout` objects.
        self._sleep_pool: list[_PooledTimeout] = []
        #: Observability hook; the shared disabled tracer by default, so
        #: instrumentation sites pay one attribute read and one branch.
        #: Enable with ``Tracer().install(env)`` (see :mod:`repro.obs`).
        self.tracer = NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> Process:
        """Register `generator` as a new process starting at the current time."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event firing `delay` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """Fast-path timeout for the "yield and forget" pattern.

        Semantically identical to ``timeout(delay)`` (one event, same
        scheduling order, same simulated cost: none beyond the delay),
        but the returned object is recycled by the event loop once
        processed.  Callers must ``yield`` it immediately and never
        retain, re-yield, or compose it into :class:`AllOf`/:class:`AnyOf`
        — after processing, the object may be handed out again by a later
        ``sleep()`` call.  This is what the simulator's own hot paths
        (network chunk loop, memory copies, storage service) use.
        """
        pool = self._sleep_pool
        if not pool:
            return _PooledTimeout(self, delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        ev = pool.pop()
        # minimal reset: callbacks is already an empty list (cleared on
        # recycle), _value/_exception stay None (sleeps carry no value
        # and fail() refuses triggered events), _triggered stays True
        ev._processed = False
        ev.delay = delay
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._queue, (self._now + delay, NORMAL, seq, ev))
        return ev

    def event(self) -> Event:
        """Return a fresh untriggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event firing once all `events` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event firing when the first of `events` fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling / execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        self._seq += 1
        _heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process the single next event in the queue."""
        time, _priority, _seq, event = heapq.heappop(self._queue)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue went backwards in time")
        self._now = time
        if type(event) is _PooledTimeout:
            event._processed = True
            waiter = event._waiter
            if waiter is not None:
                event._waiter = None
                waiter(event)
            callbacks = event.callbacks
            if callbacks:
                # registered after the waiter, so they run after it
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                callbacks.clear()
                event.callbacks = callbacks  # list reused on the next sleep()
            if len(self._sleep_pool) < self._SLEEP_POOL_MAX:
                self._sleep_pool.append(event)
        else:
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for cb in callbacks:
                    cb(event)
        if self._crashed:
            proc, exc = self._crashed[0]
            if self.tracer.enabled:
                self.tracer.instant(
                    "kernel", "process.crash", PID_KERNEL, 0,
                    process=proc.name, error=repr(exc),
                )
            raise SimulationError(
                f"process {proc.name!r} crashed at t={self._now}: {exc!r}"
            ) from exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the queue drains;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event has been processed and return its value.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._run(until)
        # Kernel span: sim-time bounds, with the kernel's own wall-clock
        # cost and the number of events dispatched attached as args (the
        # event count rides the existing _seq counter, so the hot loops
        # below carry no per-event tracing cost).
        t0 = tracer.now()
        seq0 = self._seq
        wall0 = perf_counter()
        try:
            return self._run(until)
        finally:
            tracer.complete(
                "kernel",
                "sim.run",
                PID_KERNEL,
                0,
                t0,
                tracer.now() - t0,
                wall_s=perf_counter() - wall0,
                events=self._seq - seq0,
            )

    def _run(self, until: Optional[float | Event] = None) -> Any:
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("cannot run() into the past")

        # The hot loop is `step()` inlined: the queue, heappop, the sleep
        # pool, and the crash list are bound to locals once, the
        # defensive time check is dropped (pops are monotone by heap
        # order), and the common single-callback case skips the loop.
        queue = self._queue
        pop = _heappop
        crashed = self._crashed
        pool = self._sleep_pool
        pool_max = self._SLEEP_POOL_MAX
        pooled_type = _PooledTimeout
        check_stop = stop_event is not None or stop_time is not None
        if not check_stop:
            # run-to-exhaustion tight loop: identical body minus the
            # per-event stop checks (this variant drains the benchmarked
            # hot paths, where every comparison per event shows up)
            while queue:
                time, _priority, _seq, event = pop(queue)
                self._now = time
                if event.__class__ is pooled_type:
                    # pooled sleeps: resume the sole waiter directly, then
                    # recycle — no callbacks-list traffic on this path
                    event._processed = True
                    waiter = event._waiter
                    if waiter is not None:
                        event._waiter = None
                        waiter(event)
                    callbacks = event.callbacks
                    if callbacks:
                        # registered after the waiter, so they run after it
                        event.callbacks = None
                        for cb in callbacks:
                            cb(event)
                        callbacks.clear()
                        event.callbacks = callbacks
                    if len(pool) < pool_max:
                        pool.append(event)
                else:
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for cb in callbacks:
                                cb(event)
                if crashed:
                    proc, exc = crashed[0]
                    tracer = self.tracer
                    if tracer.enabled:
                        tracer.instant(
                            "kernel", "process.crash", PID_KERNEL, 0,
                            process=proc.name, error=repr(exc),
                        )
                    raise SimulationError(
                        f"process {proc.name!r} crashed at t={self._now}: {exc!r}"
                    ) from exc
        while queue:
            if check_stop:
                if stop_event is not None and stop_event._processed:
                    return stop_event.value
                if stop_time is not None and queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
            time, _priority, _seq, event = pop(queue)
            self._now = time
            if event.__class__ is pooled_type:
                # pooled sleeps: resume the sole waiter directly, then
                # recycle — no callbacks-list traffic on this path
                event._processed = True
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    waiter(event)
                callbacks = event.callbacks
                if callbacks:
                    # registered after the waiter, so they run after it
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
                    callbacks.clear()
                    event.callbacks = callbacks
                if len(pool) < pool_max:
                    pool.append(event)
            else:
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for cb in callbacks:
                            cb(event)
            if crashed:
                proc, exc = crashed[0]
                tracer = self.tracer
                if tracer.enabled:
                    tracer.instant(
                        "kernel", "process.crash", PID_KERNEL, 0,
                        process=proc.name, error=repr(exc),
                    )
                raise SimulationError(
                    f"process {proc.name!r} crashed at t={self._now}: {exc!r}"
                ) from exc

        if stop_event is not None:
            if stop_event._processed:
                return stop_event.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired "
                "(deadlock?)"
            )
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
