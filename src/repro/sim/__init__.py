"""Deterministic discrete-event simulation kernel.

The :mod:`repro.sim` package provides the event engine
(:class:`~repro.sim.engine.Environment`, processes-as-generators), shared
resources (:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Container`), and seeded RNG streams
(:class:`~repro.sim.rng.RngFactory`).  Everything above it — the cluster,
the MPI runtime, the parallel file system — is built from these pieces.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, Request, Resource
from .rng import RngFactory, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "RngFactory",
    "SimulationError",
    "Timeout",
    "derive_seed",
]
