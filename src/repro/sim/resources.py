"""Shared-resource primitives for the simulation kernel.

Two resource kinds cover everything the cluster model needs:

:class:`Resource`
    A counted FIFO resource (``capacity`` concurrent holders).  Used for I/O
    server service slots, NIC transmit/receive engines, and memory-bus
    channels.  Contention shows up as queueing delay.

:class:`Container`
    A levelled resource holding a continuous amount (e.g. bytes of memory).
    ``get``/``put`` block until satisfiable, FIFO-fairly.

Both are deterministic: waiters are served strictly in request order.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .engine import NORMAL, Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Container"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Yield it to wait for the grant; pass it back to
    :meth:`Resource.release` when done.  Usable as a context manager inside
    process generators::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Fail the request, releasing its queued slot if still waiting.

        Without this, a queued request whose event is failed (e.g. by a
        fault injector declaring the resource's owner unavailable) would
        eventually be granted a slot nobody releases — a capacity leak
        that deadlocks the queue.
        """
        self.resource._discard_waiter(self)
        return super().fail(exception, priority=priority)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.resource.release(self)


class Resource:
    """A counted FIFO resource with `capacity` concurrent holders.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of requests that may hold the resource simultaneously.
    name:
        Optional label used in error messages and traces.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._holders: set[Request] = set()
        self._waiters: deque[Request] = deque()
        #: Total simulated time-weighted busy integral (for utilisation).
        self._busy_time = 0.0
        self._last_change = env.now
        self._peak_queue = 0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    @property
    def peak_queue_length(self) -> int:
        """Largest queue length observed so far."""
        return self._peak_queue

    def utilization(self) -> float:
        """Average fraction of capacity in use since creation."""
        self._account()
        elapsed = self.env.now - 0.0
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += len(self._holders) * (now - self._last_change)
        self._last_change = now

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity and not self._waiters:
            self._account()
            self._holders.add(req)
            req.succeed(req)
        else:
            self._waiters.append(req)
            self._peak_queue = max(self._peak_queue, len(self._waiters))
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot.

        Releasing a request that was never granted (still queued) cancels
        it.  Releasing a request that was *failed* while queued (see
        :meth:`Request.fail`) is a no-op: the slot was already reclaimed.
        """
        if request in self._holders:
            self._account()
            self._holders.discard(request)
            self._grant_next()
        else:
            try:
                self._waiters.remove(request)
            except ValueError:
                if request._exception is not None:
                    # failed while queued: already discarded from the
                    # queue, nothing left to release
                    return
                raise SimulationError(
                    f"release of unknown request on resource {self.name!r}"
                ) from None

    def _discard_waiter(self, request: Request) -> None:
        """Drop `request` from the wait queue if present (fail/cancel path)."""
        try:
            self._waiters.remove(request)
        except ValueError:
            pass

    def fail_waiters(self, exception: BaseException) -> int:
        """Fail every queued (ungranted) request with `exception`.

        Used by fault injectors to abort processes queued behind an
        outage instead of leaving them parked until the resource frees.
        Holders are unaffected.  Returns the number of requests failed.
        """
        waiting = list(self._waiters)
        for req in waiting:
            req.fail(exception)
        return len(waiting)

    def _grant_next(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            nxt = self._waiters.popleft()
            if nxt.triggered:  # failed/cancelled while queued; skip
                continue
            self._account()
            self._holders.add(nxt)
            nxt.succeed(nxt)


class Container:
    """A continuous-quantity store (bytes, tokens, ...).

    ``get`` requests block FIFO-fairly until the level is sufficient; a large
    ``get`` at the head of the queue blocks later small ones (no overtaking),
    which keeps behaviour deterministic and starvation-free.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if init < 0 or init > capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def get(self, amount: float) -> Event:
        """Withdraw `amount`; the event fires once withdrawn."""
        if amount < 0:
            raise ValueError(f"negative get amount: {amount}")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def put(self, amount: float) -> Event:
        """Deposit `amount`; the event fires once it fits under capacity."""
        if amount < 0:
            raise ValueError(f"negative put amount: {amount}")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed(amount)
                    progressed = True
